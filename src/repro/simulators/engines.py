"""Pluggable execution engines over a compiled noisy program.

Every execution path — the sequential :class:`~repro.hardware.execution.NoisyExecutor`
facade and the batched :class:`~repro.hardware.batch.BatchExecutor` — routes
through the engines registered here.  An engine consumes a
:class:`~repro.hardware.program.CompiledNoisyProgram` (the shared event
template with pre-resolved operators) plus per-job window variants, and
returns one active-space probability vector per job.

Four engines are registered by default:

* ``"density_matrix"`` — exact mixed-state evolution; channels are applied as
  precomputed superoperators, one BLAS-backed contraction over the whole
  stacked batch per event.
* ``"trajectories"`` — vectorized Monte-Carlo unravelling on statevectors;
  every trajectory draws from its own seeded stream via the single-uniform
  :func:`choose_branch` protocol, making results independent of batching.
* ``"stabilizer"`` — the Clifford fast path: when every gate of the compiled
  program is exactly representable on the CHP tableau (Clifford decoys, the
  Figure 8 exhaustive-DD sweep), the ideal output distribution is computed on
  the stabilizer engine and every noise channel is **Pauli-twirled** into a
  stochastic Pauli channel.  Because Pauli errors propagate through Clifford
  circuits to Pauli errors, and only the X-component of a propagated error
  changes computational-basis probabilities, the noisy distribution is the
  ideal one convolved (over GF(2)^n) with the propagated error-mask
  distribution — computed *exactly* via a Walsh–Hadamard transform, with no
  Monte-Carlo sampling and no 4^n density matrix.
* ``"stabilizer_frames"`` — the *device-scale* Clifford path: the same
  Pauli-twirled model, but the exact 2^n convolution is replaced by seeded
  Pauli-*frame* sampling (one twirled branch per event per trajectory,
  XOR-propagated on bit-packed words), and the result is a **sparse**
  output-space distribution.  Memory scales with
  ``trajectories * ceil(qubits / 64)`` uint64 words instead of 2^n, which is
  what lets a 127-qubit mirror workload execute in milliseconds.

Both Clifford engines run on the bit-packed symplectic kernels of
:mod:`repro.simulators.symplectic` by default; ``REPRO_PURE_KERNELS=1``
switches them back to the original boolean-row code path, which is kept as
the differential-testing oracle.  Outputs are bit-identical either way.

Engine selection policy lives here too (:func:`select_engine`): ``"auto"``
picks the stabilizer fast path for Clifford-only programs, the dense density
matrix up to ``dm_qubit_limit`` active qubits, and trajectories beyond; with
a memory budget, Clifford programs too large for every dense state fall back
to the frame engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate
from . import symplectic
from .stabilizer import StabilizerSimulator
from .statevector import SimulationError

__all__ = [
    "EngineJob",
    "ExecutionEngine",
    "DensityMatrixEngine",
    "TrajectoryEngine",
    "StabilizerEngine",
    "StabilizerFrameEngine",
    "SparseDistribution",
    "available_engines",
    "get_engine",
    "register_engine",
    "select_engine",
    "choose_branch",
    "pauli_twirl_probabilities",
    "STABILIZER_AUTO_QUBIT_LIMIT",
]

#: Beyond this many active qubits ``"auto"`` stops preferring the stabilizer
#: fast path (its 2^n Walsh–Hadamard convolution stops being the cheap option).
STABILIZER_AUTO_QUBIT_LIMIT = 12


def choose_branch(rng: np.random.Generator, cumulative: np.ndarray) -> int:
    """Pick a branch index from cumulative probabilities with ONE uniform draw.

    The single-draw protocol (rather than ``Generator.choice``) is shared by
    every stochastic engine so that all of them consume per-trajectory
    streams identically.
    """
    u = rng.random()
    index = int(np.searchsorted(cumulative, u, side="right"))
    return min(index, len(cumulative) - 1)


@dataclass
class EngineJob:
    """Per-job execution inputs handed to an engine.

    ``variants`` holds one window-variant key per idle window of the program
    (see :meth:`~repro.hardware.program.CompiledNoisyProgram.window_ops`);
    ``streams`` the per-trajectory RNG streams (only materialized for engines
    with ``needs_streams``).  ``outputs`` gives the job's output qubits as
    *active-space positions* in output-bit order — dense engines ignore it
    (the pipeline marginalizes their full vectors), sparse engines resolve
    outputs themselves because a 2^n vector never exists.
    """

    variants: List[object]
    streams: Optional[List[np.random.Generator]] = None
    outputs: Optional[Tuple[int, ...]] = None


@dataclass
class SparseDistribution:
    """Sparse *output-space* distribution returned by frame-based engines.

    ``probabilities`` maps output bitstrings to probability mass.  Unlike the
    dense per-active-qubit vectors, the support never exceeds the trajectory
    count, so 100+ qubit programs stay cheap.  ``readout_applied`` records
    that assignment errors were already folded in per frame — the execution
    pipeline must not apply them a second time.  ``metadata`` carries
    engine-computed exact quantities (e.g. the frame engine's
    ``flip_free_probability``: the probability that a run suffers *no*
    bit-flip error at all, which stays exactly computable when the sampled
    success probability is below the frame resolution) and is merged into
    :class:`~repro.hardware.execution.ExecutionResult` metadata.
    """

    probabilities: Dict[str, float]
    num_bits: int
    #: Sparse engines must fold readout assignment errors in themselves (a
    #: dense readout pass over the output space does not exist at their
    #: scale); the pipeline *rejects* sparse results that arrive without it.
    #: Defaults to False so an engine that forgets readout entirely is caught
    #: by the guard instead of silently skipping measurement errors.
    readout_applied: bool = False
    metadata: Dict[str, float] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Batched tensor contractions (shared by the dense engines)
# ---------------------------------------------------------------------------


def _apply_operator(state: np.ndarray, op_tensor: np.ndarray, leg_axes: Sequence[int]) -> np.ndarray:
    """Contract a k-leg operator with the given state axes, axes kept in place.

    Implemented with ``tensordot`` (transpose + one BLAS matmul) rather than
    ``einsum``, whose generic iterator is an order of magnitude slower on
    these many-small-axis tensors.
    """
    k = len(leg_axes)
    nd = state.ndim
    result = np.tensordot(op_tensor, state, axes=(list(range(k, 2 * k)), list(leg_axes)))
    # tensordot puts the operator's output legs first; move each back to the
    # axis it replaced.
    remaining = [a for a in range(nd) if a not in leg_axes]
    current = {axis: i for i, axis in enumerate(list(leg_axes) + remaining)}
    perm = [current[a] for a in range(nd)]
    return np.transpose(result, perm)


def _apply_phase_angles(state: np.ndarray, angles: np.ndarray, axis: int) -> np.ndarray:
    """Apply per-batch-element RZ(angle) to one statevector leg (diagonal)."""
    stacked = np.stack(
        [np.exp(-0.5j * angles), np.exp(0.5j * angles)], axis=-1
    )
    shape = list(angles.shape) + [1] * (state.ndim - angles.ndim)
    shape[axis] = 2
    return state * stacked.reshape(shape)


# ---------------------------------------------------------------------------
# Engine base + registry
# ---------------------------------------------------------------------------


class ExecutionEngine:
    """Interface of one execution engine over compiled programs."""

    name: str = "base"
    #: True if the engine consumes per-trajectory seeded streams; executors
    #: only materialize the streams when an engine asks for them.
    needs_streams: bool = False

    def supports(self, program) -> bool:
        """True if the engine can execute this compiled program."""
        return True

    def state_bytes(self, num_active: int, trajectories: int) -> int:
        """Per-job working-state size, used for memory-budget sub-batching."""
        raise NotImplementedError

    def run(
        self,
        program,
        jobs: Sequence[EngineJob],
        trajectories: int,
        stats: Optional[Dict[str, int]] = None,
    ) -> List[np.ndarray]:
        """Execute all jobs, returning one active-space probability vector each."""
        raise NotImplementedError


_ENGINES: Dict[str, ExecutionEngine] = {}


def register_engine(engine: ExecutionEngine) -> ExecutionEngine:
    """Register an engine instance under its ``name`` (latest wins)."""
    _ENGINES[engine.name] = engine
    return engine


def available_engines() -> List[str]:
    """Sorted names of every registered engine."""
    return sorted(_ENGINES)


def get_engine(name: str) -> ExecutionEngine:
    try:
        return _ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine '{name}' (registered engines: "
            f"{', '.join(available_engines())})"
        ) from None


def select_engine(
    engine: str,
    num_active: int,
    dm_qubit_limit: int = 10,
    clifford: bool = False,
    stabilizer_qubit_limit: int = STABILIZER_AUTO_QUBIT_LIMIT,
    memory_budget_bytes: Optional[int] = None,
    trajectories: int = 1,
) -> str:
    """The one engine-selection policy shared by every execution path.

    ``"auto"`` resolves to the stabilizer fast path when the compiled program
    is Clifford-only (and small enough for the 2^n convolution), otherwise to
    the dense density matrix up to ``dm_qubit_limit`` active qubits, and to
    the trajectory engine beyond.  ``"auto_dense"`` applies the same policy
    but never picks the stabilizer engine — for *measurement* contexts (final
    reported fidelities) where the Pauli-twirl approximation is not wanted,
    as opposed to *scoring/ranking* contexts (decoy scoring, DD sweeps) where
    it is.  Explicit engine names are validated against the registry.

    ``memory_budget_bytes`` threads the executor's active-space memory budget
    into the choice: among the preference order above, the first engine whose
    *single-job* working state (``ExecutionEngine.state_bytes`` at
    ``num_active`` / ``trajectories``) fits the budget wins.  This is what
    keeps the auto policy viable at the 127-qubit device scale — a routed
    program whose active space outgrows the dense engines degrades to
    trajectories, a Clifford program whose trajectory stack would blow the
    budget rides the 2^n stabilizer spectrum beyond the nominal auto limit,
    and a Clifford program too large for even that spectrum (the 48+ qubit
    mirror workloads) lands on the sparse ``stabilizer_frames`` engine, whose
    state is ``trajectories * n`` bits and therefore always fits.  If nothing
    fits, the nominally preferred engine is returned unchanged (executors
    clamp oversized sub-batches to one job), so a budget never changes which
    programs are *runnable*, only which engine runs them.
    """
    if engine not in ("auto", "auto_dense"):
        get_engine(engine)  # raises with the registered names listed
        return engine
    stabilizer_ok = engine == "auto" and clifford and "stabilizer" in _ENGINES
    candidates = []
    if stabilizer_ok and num_active <= stabilizer_qubit_limit:
        candidates.append("stabilizer")
    if num_active <= dm_qubit_limit:
        candidates.append("density_matrix")
    candidates.append("trajectories")
    if stabilizer_ok and "stabilizer" not in candidates:
        # Last resort beyond the nominal auto limit: the stabilizer state
        # grows 2^n, not 16^n, so it may be the only engine inside budget.
        candidates.append("stabilizer")
    if stabilizer_ok and "stabilizer_frames" in _ENGINES:
        # Final fallback at device scale: frame sampling never needs a dense
        # state, so Clifford programs stay executable at any width.
        candidates.append("stabilizer_frames")
    if memory_budget_bytes is not None:
        for name in candidates:
            state = get_engine(name).state_bytes(num_active, max(1, int(trajectories)))
            if state <= memory_budget_bytes:
                return name
    return candidates[0]


def _window_groups(jobs: Sequence[EngineJob], widx: int) -> Dict[object, List[int]]:
    """Group job indices by the variant they use for window ``widx``."""
    groups: Dict[object, List[int]] = {}
    for j, job in enumerate(jobs):
        groups.setdefault(job.variants[widx], []).append(j)
    return groups


# ---------------------------------------------------------------------------
# Density-matrix engine
# ---------------------------------------------------------------------------


class DensityMatrixEngine(ExecutionEngine):
    """Exact mixed-state evolution via batched superoperator contractions."""

    name = "density_matrix"
    needs_streams = False

    def state_bytes(self, num_active: int, trajectories: int) -> int:
        return 16 * (4 ** num_active)

    def run(self, program, jobs, trajectories, stats=None):
        n = program.num_active
        J = len(jobs)
        state = np.zeros((J,) + (2,) * (2 * n), dtype=complex)
        state[(slice(None),) + (0,) * (2 * n)] = 1.0

        def apply_op(target: np.ndarray, op) -> np.ndarray:
            rows = [1 + p for p in op.positions]
            cols = [1 + n + p for p in op.positions]
            return _apply_operator(target, op.superop, rows + cols)

        for kind, payload in program.template:
            if kind == "op":
                state = apply_op(state, payload)
                continue
            widx: int = payload
            for variant, members in _window_groups(jobs, widx).items():
                ops = program.window_ops(widx, variant)
                if not ops:
                    continue
                if stats is not None:
                    stats["window_variants"] = stats.get("window_variants", 0) + 1
                if len(members) == J:
                    for op in ops:
                        state = apply_op(state, op)
                else:
                    index = np.array(members)
                    sub = state[index]
                    for op in ops:
                        sub = apply_op(sub, op)
                    state[index] = sub

        # Diagonal, clipped and renormalised exactly like
        # DensityMatrixSimulator.probabilities().
        diag_labels = [0] + list(range(1, n + 1)) + list(range(1, n + 1))
        diag = np.real(np.einsum(state, diag_labels, [0] + list(range(1, n + 1))))
        diag = diag.reshape(J, 2 ** n).copy()
        diag[diag < 0] = 0.0
        results = []
        for j in range(J):
            total = diag[j].sum()
            if total <= 0:
                raise SimulationError("density matrix has vanished (all-zero diagonal)")
            results.append(diag[j] / total)
        return results


# ---------------------------------------------------------------------------
# Trajectory engine
# ---------------------------------------------------------------------------


class TrajectoryEngine(ExecutionEngine):
    """Vectorized Monte-Carlo unravelling with per-trajectory seeded streams."""

    name = "trajectories"
    needs_streams = True

    def state_bytes(self, num_active: int, trajectories: int) -> int:
        return 16 * trajectories * (2 ** num_active)

    def run(self, program, jobs, trajectories, stats=None):
        n = program.num_active
        J = len(jobs)
        T = trajectories
        streams = [job.streams for job in jobs]
        state = np.zeros((J, T) + (2,) * n, dtype=complex)
        state[(slice(None), slice(None)) + (0,) * n] = 1.0

        for kind, payload in program.template:
            if kind == "op":
                state = self._apply_sv_op(state, payload, list(range(J)), streams, offset=2)
                continue
            widx: int = payload
            for variant, members in _window_groups(jobs, widx).items():
                ops = program.window_ops(widx, variant)
                if not ops:
                    continue
                if stats is not None:
                    stats["window_variants"] = stats.get("window_variants", 0) + 1
                for op in ops:
                    state = self._apply_sv_op(state, op, members, streams, offset=2)

        flat = state.reshape(J, T, -1)
        probs = np.abs(flat) ** 2
        probs = probs / probs.sum(axis=2, keepdims=True)
        return [probs[j].sum(axis=0) / T for j in range(J)]

    def _apply_sv_op(
        self,
        state: np.ndarray,
        op,
        members: List[int],
        streams: List[List[np.random.Generator]],
        offset: int,
    ) -> np.ndarray:
        """Apply one operator to the (members x trajectories) statevectors."""
        J, T = state.shape[0], state.shape[1]
        axes = [offset + p for p in op.positions]
        whole = len(members) == J

        if op.kind == "unitary":
            if whole:
                return _apply_operator(state, op.tensor, axes)
            index = np.array(members)
            sub = state[index]
            state[index] = _apply_operator(sub, op.tensor, axes)
            return state

        if op.kind == "gaussian":
            angles = np.empty((len(members), T), dtype=float)
            for row, j in enumerate(members):
                for t in range(T):
                    angles[row, t] = streams[j][t].normal(0.0, op.std)
            if whole:
                return _apply_phase_angles(state, angles, axes[0])
            index = np.array(members)
            sub = state[index]
            state[index] = _apply_phase_angles(sub, angles, axes[0])
            return state

        # Stochastic Kraus unravelling.
        index = np.array(members)
        sub = state if whole else state[index]
        sub_axes = axes
        if op.mixed_cumulative is not None:
            cumulative = op.mixed_cumulative
            choices = np.empty((len(members), T), dtype=np.int64)
            for row, j in enumerate(members):
                row_streams = streams[j]
                for t in range(T):
                    choices[row, t] = choose_branch(row_streams[t], cumulative)
            for branch, unitary in enumerate(op.mixed_unitaries or []):
                if unitary is None:
                    continue
                mask = choices == branch
                if not mask.any():
                    continue
                picked = sub[mask]  # (N,) + legs
                picked_axes = [a - 1 for a in sub_axes]
                sub[mask] = _apply_operator(picked, unitary, picked_axes)
            if whole:
                return sub
            state[index] = sub
            return state

        # Generic state-dependent branches (e.g. amplitude damping).
        m = op.kraus_stack.shape[0]
        N = len(members)
        candidates = np.stack(
            [_apply_operator(sub, op.kraus_stack[b], sub_axes) for b in range(m)]
        )  # (m, N, T) + legs
        flat = candidates.reshape(m, N, T, -1)
        weights = np.einsum("mntd,mntd->mnt", flat, np.conj(flat)).real  # (m, N, T)
        totals = weights.sum(axis=0)  # (N, T)
        safe_totals = np.where(totals > 0, totals, 1.0)
        cumulative = np.cumsum(weights / safe_totals, axis=0)  # (m, N, T)
        choices = np.zeros((N, T), dtype=np.int64)
        keep = np.zeros((N, T), dtype=bool)
        for row, j in enumerate(members):
            row_streams = streams[j]
            for t in range(T):
                # A vanished channel keeps the state AND consumes no draw,
                # mirroring the single-job engine semantics.
                if totals[row, t] <= 0:
                    keep[row, t] = True
                    continue
                choices[row, t] = choose_branch(row_streams[t], cumulative[:, row, t])
        n_idx, t_idx = np.meshgrid(np.arange(N), np.arange(T), indexing="ij")
        selected = flat[choices, n_idx, t_idx, :]  # (N, T, D)
        chosen_weights = weights[choices, n_idx, t_idx]
        norms = np.sqrt(np.where(chosen_weights > 0, chosen_weights, 1.0))
        selected = selected / norms[..., None]
        keep |= chosen_weights <= 0
        if keep.any():
            original = sub.reshape(N, T, -1)
            selected[keep] = original[keep]
        new_sub = selected.reshape(sub.shape)
        if whole:
            return new_sub
        state[index] = new_sub
        return state


# ---------------------------------------------------------------------------
# Stabilizer (Clifford fast path) engine
# ---------------------------------------------------------------------------

#: Single-qubit Paulis as (matrix, x-bit, z-bit) in symplectic convention.
_PAULI_1Q: List[Tuple[np.ndarray, int, int]] = [
    (np.eye(2, dtype=complex), 0, 0),
    (np.array([[0, 1], [1, 0]], dtype=complex), 1, 0),
    (np.array([[0, -1j], [1j, 0]], dtype=complex), 1, 1),
    (np.array([[1, 0], [0, -1]], dtype=complex), 0, 1),
]

#: Stacked k-qubit Pauli bases: k -> (matrices (4^k, 2^k, 2^k), xbits, zbits).
_PAULI_BASIS_CACHE: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}


def _pauli_basis(k: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    basis = _PAULI_BASIS_CACHE.get(k)
    if basis is None:
        matrices, xrows, zrows = [], [], []
        for labels in np.ndindex(*([4] * k)):
            pauli = np.eye(1, dtype=complex)
            xbits, zbits = [], []
            for label in labels:
                matrix, x, z = _PAULI_1Q[label]
                pauli = np.kron(pauli, matrix)
                xbits.append(x)
                zbits.append(z)
            matrices.append(pauli)
            xrows.append(xbits)
            zrows.append(zbits)
        basis = (
            np.stack(matrices),
            np.array(xrows, dtype=bool),
            np.array(zrows, dtype=bool),
        )
        _PAULI_BASIS_CACHE[k] = basis
    return basis


def pauli_twirl_probabilities(
    kraus: Sequence[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pauli-twirl a channel: probabilities over the 4^k Pauli strings.

    Expanding each Kraus operator in the Pauli basis, ``K_m = sum_P c_mP P``,
    the twirled channel applies Pauli ``P`` with probability
    ``p_P = sum_m |c_mP|^2`` — always a valid distribution.  Returns
    ``(probs, xbits, zbits)`` for the Paulis with non-negligible weight,
    where ``xbits``/``zbits`` are ``(branches, k)`` boolean arrays.
    """
    stack = np.stack([np.asarray(op, dtype=complex) for op in kraus])  # (m, d, d)
    dim = stack.shape[1]
    k = int(round(math.log2(dim)))
    paulis, xrows, zrows = _pauli_basis(k)
    # c_mP = tr(P K_m) / dim for every Pauli at once (one einsum).
    coefficients = np.einsum("pij,mji->pm", paulis, stack) / dim
    weights = (np.abs(coefficients) ** 2).sum(axis=1)
    keep = weights > 1e-15
    probs = weights[keep]
    return probs / probs.sum(), xrows[keep], zrows[keep]


def _fwht(values: np.ndarray) -> np.ndarray:
    """Unnormalized fast Walsh–Hadamard transform (self-inverse up to 1/2^n)."""
    out = values.astype(float).copy()
    h = 1
    length = out.shape[0]
    while h < length:
        out = out.reshape(-1, 2, h)
        top = out[:, 0, :] + out[:, 1, :]
        bottom = out[:, 0, :] - out[:, 1, :]
        out = np.stack([top, bottom], axis=1).reshape(-1)
        h *= 2
    return out


def _bit_parity(values: np.ndarray) -> np.ndarray:
    """Parity of the set bits of each (uint64) entry."""
    values = values.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        values ^= values >> shift
    return (values & 1).astype(bool)


class StabilizerEngine(ExecutionEngine):
    """Exact Clifford fast path: tableau + Pauli-twirled noise convolution.

    The model replaces every noise channel by its Pauli twirl (exact for the
    depolarizing gate errors, phase damping and quasi-static Gaussian
    dephasing; an approximation for coherent rz/rx rotations and the
    non-unital part of T1 decay).  Within that model the returned
    distribution is exact — no trajectories are sampled — so DD-candidate
    rankings are deterministic.
    """

    name = "stabilizer"
    needs_streams = False

    def supports(self, program) -> bool:
        return bool(getattr(program, "is_clifford", False))

    def state_bytes(self, num_active: int, trajectories: int) -> int:
        return 8 * (2 ** num_active)

    # -- public entry --------------------------------------------------

    def run(self, program, jobs, trajectories, stats=None):
        if not self.supports(program):
            raise SimulationError(
                "the stabilizer engine requires a Clifford-only compiled program;"
                " use engine='auto', 'density_matrix' or 'trajectories'"
            )
        n = program.num_active
        needed = set()
        for job in jobs:
            for widx, variant in enumerate(job.variants):
                if variant != "skip":
                    needed.add((widx, variant))
        cache = program.engine_cache.get(self.name)
        if cache is None:
            cache = self._build_base(program)
            program.engine_cache[self.name] = cache
        # Incremental: only spectra of variants never seen before are computed
        # (through the memoized per-window suffix conjugation maps); the ideal
        # spectrum and the shared gate-noise spectrum are never rebuilt.
        for widx, variant in sorted(needed - cache["built"], key=repr):
            self._add_window_variant(program, cache, widx, variant)
            cache["built"].add((widx, variant))

        results = []
        for job in jobs:
            spectrum = cache["shared"].copy()
            for widx, variant in enumerate(job.variants):
                if variant == "skip":
                    continue
                window_spectrum = cache["windows"].get((widx, variant))
                if window_spectrum is not None:
                    spectrum *= window_spectrum
            probs = _fwht(cache["ideal_wht"] * spectrum) / (2 ** n)
            probs[probs < 0] = 0.0
            total = probs.sum()
            if total <= 0:
                raise SimulationError("stabilizer distribution has vanished")
            results.append(probs / total)
        if stats is not None and jobs:
            for widx in range(len(jobs[0].variants)):
                groups = {
                    job.variants[widx]
                    for job in jobs
                    if (widx, job.variants[widx]) in cache["windows"]
                }
                stats["window_variants"] = stats.get("window_variants", 0) + len(groups)
        return results

    # -- model construction --------------------------------------------

    def _ideal_distribution(self, program) -> np.ndarray:
        """Exact noise-free output distribution over the active qubits."""
        n = program.num_active
        circuit = QuantumCircuit(n)
        for kind, payload in program.template:
            if kind == "op" and payload.gate is not None:
                circuit.append(
                    Gate(payload.gate.name, payload.positions, payload.gate.params)
                )
        outcome_map = StabilizerSimulator().probabilities(circuit, max_outcomes=2 ** n)
        ideal = np.zeros(2 ** n, dtype=float)
        for bits, probability in outcome_map.items():
            ideal[int(bits, 2)] = probability
        return ideal / ideal.sum()

    def _build_base(self, program) -> Dict[str, object]:
        """The variant-independent part of the model, from the shared table.

        The propagated mask table (:func:`_noise_mask_table`, shared with the
        frame engine) supplies every shared noise event's branch
        probabilities and end-propagated X-masks; here they are convolved
        into one spectrum, alongside the exact ideal distribution.
        """
        n = program.num_active
        table = _noise_mask_table(program)
        shared = np.ones(2 ** n, dtype=float)
        for entry in table["sequence"]:
            if entry[0] == "noise":
                _, probs, masks = entry
                shared *= self._spectrum(probs, self._pack_masks(masks, n), n)
        ideal = self._ideal_distribution(program)
        return {
            "ideal_wht": _fwht(ideal),
            "shared": shared,
            "suffix_maps": table["suffix_maps"],
            "windows": {},
            "built": set(),
        }

    def _add_window_variant(self, program, cache, widx: int, variant: object) -> None:
        """Spectrum of one (window, variant): twirl its ops, map through the
        memoized suffix conjugation, convolve — no template re-walk."""
        events = _variant_mask_events(program, cache["suffix_maps"], widx, variant)
        if not events:
            return
        n = program.num_active
        spectrum = np.ones(2 ** n, dtype=float)
        for probs, final_x in events:
            spectrum *= self._spectrum(probs, self._pack_masks(final_x, n), n)
        cache["windows"][(widx, variant)] = spectrum

    @staticmethod
    def _spectrum(probs: np.ndarray, masks: np.ndarray, n: int) -> np.ndarray:
        """Walsh–Hadamard spectrum of one event's mask distribution."""
        indices = np.arange(2 ** n, dtype=np.uint64)
        spectrum = np.zeros(2 ** n, dtype=float)
        for row, mask in enumerate(masks):
            signs = np.where(_bit_parity(indices & mask), -1.0, 1.0)
            spectrum += probs[row] * signs
        return spectrum

    @staticmethod
    def _twirl(op) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        twirl = op._twirl
        if twirl is None:
            twirl = pauli_twirl_probabilities(op.kraus_matrices())
            op._twirl = twirl
        return twirl

    @staticmethod
    def _pack_masks(xparts: np.ndarray, n: int) -> np.ndarray:
        """X-mask rows packed into integers (qubit position 0 = MSB).

        This is the dense engine's output boundary: mask rows arriving as
        packed symplectic words (qubit 0 = LSB of word 0) are unpacked here
        before re-encoding into the MSB-first indices the 2^n spectrum uses.
        The engine only runs at small n, so the conversion is negligible.
        """
        if xparts.dtype == np.uint64:
            xparts = symplectic.unpack_rows(xparts, n)
        weights = (1 << np.arange(n - 1, -1, -1)).astype(np.uint64)
        return (xparts.astype(np.uint64) @ weights).astype(np.uint64)

    @staticmethod
    def _propagate_gate(op, xparts: np.ndarray, zparts: np.ndarray) -> None:
        """Symplectic conjugation of the pending Pauli rows by one gate."""
        gate = op.gate
        name = gate.name
        positions = op.positions
        if name in ("id", "i", "x", "y", "z"):
            return
        if name == "h":
            a = positions[0]
            xa = xparts[:, a].copy()
            xparts[:, a] = zparts[:, a]
            zparts[:, a] = xa
        elif name in ("s", "sdg"):
            a = positions[0]
            zparts[:, a] ^= xparts[:, a]
        elif name in ("sx", "sxdg"):
            a = positions[0]
            xparts[:, a] ^= zparts[:, a]
        elif name in ("cx", "cnot"):
            control, target = positions
            xparts[:, target] ^= xparts[:, control]
            zparts[:, control] ^= zparts[:, target]
        elif name == "cz":
            a, b = positions
            zparts[:, b] ^= xparts[:, a]
            zparts[:, a] ^= xparts[:, b]
        elif name == "swap":
            a, b = positions
            for parts in (xparts, zparts):
                col = parts[:, a].copy()
                parts[:, a] = parts[:, b]
                parts[:, b] = col
        elif name in ("rz", "u1", "p"):
            quarter_turns = int(round(gate.params[0] / (math.pi / 2))) % 4
            if quarter_turns in (1, 3):
                a = positions[0]
                zparts[:, a] ^= xparts[:, a]
        else:  # pragma: no cover - guarded by CompiledNoisyProgram.is_clifford
            raise SimulationError(f"gate '{name}' is not Clifford-propagatable")


# ---------------------------------------------------------------------------
# Shared twirled-mask propagation (stabilizer + stabilizer_frames)
# ---------------------------------------------------------------------------


def _noise_mask_table(program) -> Dict[str, object]:
    """Template-ordered twirled noise events with end-propagated X-masks.

    Every shared gate-noise op is Pauli-twirled and its branches propagated
    through the *subsequent* Clifford gates (phases are irrelevant: only the
    final X-mask of an error changes computational-basis probabilities), and
    every idle-window slot records its suffix conjugation map, from which
    any variant's masks are computed later without walking the template
    again.

    The table is the shared substrate of both Clifford engines — the dense
    ``stabilizer`` engine convolves the masks into 2^n spectra, the sparse
    ``stabilizer_frames`` engine samples them — and is built once per
    compiled program *and kernel mode*.  The pure path
    (``REPRO_PURE_KERNELS=1``) is the original forward pass: it seeds 2n
    boolean basis rows at every window slot and pushes the whole block
    through each gate, which is transparent but O(gates × rows).  The packed
    path (:func:`symplectic.use_packed_kernels`) instead walks the template
    *backward*, composing one ``(n, W)``-word suffix map a gate at a time
    (:func:`symplectic.compose_suffix_packed`) and reading each event's
    masks straight out of the map — O(gates × W) row operations, which is
    what keeps the mask-table build sub-second at 255 and 1023 qubits where
    the forward pass spends minutes.  The two builds produce bit-identical
    mask content (GF(2) linearity; XOR order cannot matter) and are cached
    under distinct ``engine_cache`` keys so flipping ``REPRO_PURE_KERNELS``
    mid-process can never serve a stale representation.
    """
    packed = symplectic.use_packed_kernels()
    cache_key = "stabilizer_masks:packed" if packed else "stabilizer_masks:pure"
    cached = program.engine_cache.get(cache_key)
    if cached is not None:
        return cached
    n = program.num_active
    events: List[Tuple[int, object, Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]], Tuple[int, ...]]] = []
    for tidx, (kind, payload) in enumerate(program.template):
        if kind == "op":
            if payload.gate is not None:
                continue
            events.append((tidx, "noise", StabilizerEngine._twirl(payload), payload.positions))
        else:
            events.append((tidx, ("window", payload), None, ()))

    if packed:
        results = _packed_mask_results(program, events, n)
    else:
        results = _pure_mask_results(program, events, n)

    sequence: List[Tuple] = []
    suffix_maps: Dict[int, object] = {}
    shared_flip_free = 1.0
    for item in results:  # template order, so the float product order is fixed
        if item[0] == "window":
            _, widx, maps = item
            suffix_maps[widx] = maps
            sequence.append(("window", widx))
        else:
            _, probs, masks = item
            sequence.append(("noise", probs, masks))
            shared_flip_free *= _flip_free_weight(probs, masks)

    table = {
        "sequence": sequence,
        "suffix_maps": suffix_maps,
        "shared_flip_free": shared_flip_free,
        "packed": packed,
    }
    program.engine_cache[cache_key] = table
    return table


def _packed_mask_results(program, events, n: int) -> List[Tuple]:
    """Backward suffix-composition build of the mask table (packed words).

    One reverse walk over the template maintains the x-parts of the images
    of every ``X_q``/``Z_q`` under the gates *after* the current position.
    Reaching a noise event, its branch masks are a GF(2) combination of the
    map rows at the event's positions; reaching a window slot, the two map
    rows of the window's own qubit (idle-window ops never touch any other)
    are snapshotted as ``{position: row}`` dicts — 2 rows per window instead
    of the forward pass's 2n, which is the difference between megabytes and
    gigabytes at 1023 qubits.
    """
    W = symplectic.num_words(max(n, 1))
    x_of_x = symplectic.pack_rows(np.eye(n, dtype=bool), n)  # images of X_q
    x_of_z = np.zeros((n, W), dtype=np.uint64)               # images of Z_q
    zero = np.uint64(0)
    event_index = {tidx: i for i, (tidx, _, _, _) in enumerate(events)}
    results: List[Optional[Tuple]] = [None] * len(events)
    for tidx in range(len(program.template) - 1, -1, -1):
        kind, payload = program.template[tidx]
        if kind == "op" and payload.gate is not None:
            symplectic.compose_suffix_packed(
                x_of_x, x_of_z, payload.gate.name, payload.positions, payload.gate.params
            )
            continue
        _, tag, twirl, positions = events[event_index[tidx]]
        if twirl is None:
            widx = tag[1]
            p = program.index_of[program.windows[widx].qubit]
            maps = ({p: x_of_x[p].copy()}, {p: x_of_z[p].copy()})
            results[event_index[tidx]] = ("window", widx, maps)
        else:
            probs, xbits, zbits = twirl
            final_x = np.zeros((xbits.shape[0], W), dtype=np.uint64)
            for column, position in enumerate(positions):
                final_x ^= np.where(
                    xbits[:, column][:, None], x_of_x[position][None, :], zero
                )
                final_x ^= np.where(
                    zbits[:, column][:, None], x_of_z[position][None, :], zero
                )
            results[event_index[tidx]] = ("noise", probs, final_x)
    return results


def _pure_mask_results(program, events, n: int) -> List[Tuple]:
    """Forward row-propagation build of the mask table (boolean rows).

    The original oracle implementation: seed each event's rows when its
    template slot is reached, push every seeded row through each subsequent
    gate's column update.  Kept verbatim behind ``REPRO_PURE_KERNELS=1`` as
    the differential-testing reference for the backward packed build.
    """
    identity = np.eye(n, dtype=bool)
    basis_x = np.vstack([identity, np.zeros((n, n), dtype=bool)])  # X_q then Z_q
    basis_z = np.vstack([np.zeros((n, n), dtype=bool), identity])

    total_rows = sum(
        2 * n if twirl is None else twirl[1].shape[0] for _, _, twirl, _ in events
    )
    xparts = np.zeros((total_rows, n), dtype=bool)
    zparts = np.zeros((total_rows, n), dtype=bool)
    spans: List[Tuple[object, int, int, Optional[np.ndarray]]] = []

    cursor = 0
    event_iter = iter(events)
    pending = next(event_iter, None)
    for tidx, (kind, payload) in enumerate(program.template):
        while pending is not None and pending[0] == tidx:
            _, tag, twirl, positions = pending
            if twirl is None:  # window slot: seed the 2n basis rows
                xparts[cursor : cursor + 2 * n] = basis_x
                zparts[cursor : cursor + 2 * n] = basis_z
                spans.append((tag, cursor, cursor + 2 * n, None))
                cursor += 2 * n
            else:
                probs, xbits, zbits = twirl
                rows = xbits.shape[0]
                for column, position in enumerate(positions):
                    xparts[cursor : cursor + rows, position] = xbits[:, column]
                    zparts[cursor : cursor + rows, position] = zbits[:, column]
                spans.append((tag, cursor, cursor + rows, probs))
                cursor += rows
            pending = next(event_iter, None)
        if kind == "op" and payload.gate is not None:
            StabilizerEngine._propagate_gate(payload, xparts[:cursor], zparts[:cursor])

    results: List[Tuple] = []
    for tag, start, stop, probs in spans:
        if probs is None:
            maps = (
                xparts[start : start + n].copy(),      # x-parts of images of X_q
                xparts[start + n : stop].copy(),       # x-parts of images of Z_q
            )
            results.append(("window", tag[1], maps))
        else:
            results.append(("noise", probs, xparts[start:stop].copy()))
    return results


def _flip_free_weight(probs: np.ndarray, masks: np.ndarray) -> float:
    """Probability that one twirled event contributes no X-flip at all.

    Representation-agnostic: a row of the mask block is flip-free exactly
    when every entry is falsy, whether the entries are per-qubit booleans or
    packed uint64 words.
    """
    zero_rows = ~masks.any(axis=1)
    return float(probs[zero_rows].sum())


def _variant_mask_events(
    program, suffix_maps: Dict[int, Tuple[np.ndarray, np.ndarray]], widx: int, variant: object
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """``(probs, end-propagated X-masks)`` of one (window, variant)'s ops.

    The masks come back in whatever representation the suffix maps carry —
    packed uint64 words from a packed table (``{position: row}`` dicts
    holding just the window qubit's rows), boolean row matrices from a pure
    one — so callers never branch on the kernel mode themselves.
    """
    ops = program.window_ops(widx, variant)
    if not ops:
        return []
    n = program.num_active
    x_of_x, x_of_z = suffix_maps[widx]
    packed = isinstance(x_of_x, dict)
    events: List[Tuple[np.ndarray, np.ndarray]] = []
    for op in ops:
        probs, xbits, zbits = StabilizerEngine._twirl(op)
        rows = xbits.shape[0]
        if packed:
            zero = np.uint64(0)
            words = len(next(iter(x_of_x.values())))
            final_x = np.zeros((rows, words), dtype=np.uint64)
            for column, position in enumerate(op.positions):
                final_x ^= np.where(
                    xbits[:, column][:, None], x_of_x[position][None, :], zero
                )
                final_x ^= np.where(
                    zbits[:, column][:, None], x_of_z[position][None, :], zero
                )
        else:
            final_x = np.zeros((rows, n), dtype=bool)
            for column, position in enumerate(op.positions):
                final_x ^= xbits[:, column][:, None] & x_of_x[position][None, :]
                final_x ^= zbits[:, column][:, None] & x_of_z[position][None, :]
        events.append((probs, final_x))
    return events


# ---------------------------------------------------------------------------
# Sparse stabilizer frame engine (device-scale Clifford path)
# ---------------------------------------------------------------------------


class StabilizerFrameEngine(ExecutionEngine):
    """Pauli-frame sampling over the twirled stabilizer model, at any width.

    Same noise model as :class:`StabilizerEngine` — every channel replaced by
    its Pauli twirl, only X-components affecting outcomes — but instead of
    the exact 2^n Walsh–Hadamard convolution (impossible beyond ~25 active
    qubits) each per-trajectory stream samples one *frame*: a concrete branch
    per twirled event, whose end-propagated X-masks XOR together in O(n)
    bits.  The ideal outcome per frame is drawn from the affine-subspace
    structure of the final stabilizer state (computed once per program;
    deterministic programs — the mirror workloads — have a single point),
    readout assignment errors are folded in per frame, and the result is a
    :class:`SparseDistribution` over the *output* bits.

    This is the engine that makes the device-scale mirror workloads
    executable: the frame state is ``trajectories × ceil(n/64)`` packed
    uint64 words, so the 127-qubit points of the hardware-scaling study run
    in milliseconds.  Within the twirled model the estimate is unbiased;
    precision scales as ``1/sqrt(trajectories)``, and seeded runs are
    deterministic and batch-invariant (per-trajectory streams follow the
    same protocol as the trajectory engine).

    Two implementations share this class: the default packed path stacks
    every applied event into one ``(events, branches)`` cumulative matrix
    plus an ``(events, branches, words)`` mask tensor, draws each
    trajectory's whole uniform stream in one call, selects all branches in
    one vectorized comparison, and folds the frame XOR through
    :func:`repro.simulators.symplectic.xor_gather_reduce`; the original
    per-event boolean loop survives behind ``REPRO_PURE_KERNELS=1`` as the
    differential oracle.  Both consume the per-trajectory streams in the
    same order, so counts, ``flip_free_probability`` and every
    :class:`SparseDistribution` payload are bit-identical between them.
    """

    name = "stabilizer_frames"
    needs_streams = True

    def supports(self, program) -> bool:
        return bool(getattr(program, "is_clifford", False))

    def state_bytes(self, num_active: int, trajectories: int) -> int:
        words = symplectic.num_words(max(1, num_active))
        return max(1, 8 * words * max(1, trajectories))

    # -- public entry --------------------------------------------------

    def run(self, program, jobs, trajectories, stats=None):
        if not self.supports(program):
            raise SimulationError(
                "the stabilizer_frames engine requires a Clifford-only compiled"
                " program; use engine='auto', 'density_matrix' or 'trajectories'"
            )
        if symplectic.use_packed_kernels():
            return self._run_packed(program, jobs, stats)
        n = program.num_active
        table = _noise_mask_table(program)
        base, basis = self._ideal_structure(program)
        window_cache: Dict[
            Tuple[int, object], Tuple[List[Tuple[np.ndarray, np.ndarray]], float]
        ] = program.engine_cache.setdefault("stabilizer_frame_windows", {})
        survival_cache: Dict[Tuple[int, ...], Optional[float]] = (
            program.engine_cache.setdefault("stabilizer_frame_survival", {})
        )
        readout = self._readout_rates(program)
        used_variants: set = set()
        results = []
        for job in jobs:
            streams = job.streams
            T = len(streams)
            flips = np.zeros((T, n), dtype=bool)
            flip_free = float(table["shared_flip_free"])

            def apply_events(events) -> None:
                for probs, masks in events:
                    if not masks.any():
                        # Pure-Z noise never changes computational-basis
                        # outcomes; skipping it (deterministically, for every
                        # job alike) keeps stream consumption consistent.
                        continue
                    cumulative = np.cumsum(probs)
                    draws = np.fromiter(
                        (stream.random() for stream in streams), dtype=float, count=T
                    )
                    chosen = np.minimum(
                        np.searchsorted(cumulative, draws, side="right"),
                        len(cumulative) - 1,
                    )
                    np.logical_xor(flips, masks[chosen], out=flips)

            for entry in table["sequence"]:
                if entry[0] == "noise":
                    apply_events([(entry[1], entry[2])])
                    continue
                widx = entry[1]
                variant = job.variants[widx]
                if variant == "skip":
                    continue
                key = (widx, variant)
                cached = window_cache.get(key)
                if cached is None:
                    events = _variant_mask_events(
                        program, table["suffix_maps"], widx, variant
                    )
                    weight = 1.0
                    for probs, masks in events:
                        weight *= _flip_free_weight(probs, masks)
                    cached = (events, weight)
                    window_cache[key] = cached
                events, weight = cached
                flip_free *= weight
                if events:
                    used_variants.add(key)
                apply_events(events)

            if basis.shape[0]:
                free_bits = np.empty((T, basis.shape[0]), dtype=np.uint8)
                for t, stream in enumerate(streams):
                    free_bits[t] = stream.integers(0, 2, size=basis.shape[0])
                ideal_bits = ((free_bits @ basis.astype(np.uint8)) % 2).astype(bool)
                outcomes = base[None, :] ^ ideal_bits ^ flips
            else:
                outcomes = base[None, :] ^ flips

            positions = job.outputs if job.outputs is not None else tuple(range(n))
            out_bits = outcomes[:, list(positions)]
            for column, position in enumerate(positions):
                p01, p10 = readout[position]
                if p01 <= 0.0 and p10 <= 0.0:
                    continue
                draws = np.fromiter(
                    (stream.random() for stream in streams), dtype=float, count=T
                )
                flip = np.where(out_bits[:, column], draws < p10, draws < p01)
                out_bits[:, column] ^= flip

            if positions not in survival_cache:
                survival_cache[positions] = self._readout_survival(
                    base, basis, positions, readout
                )
            survival = survival_cache[positions]

            weight = 1.0 / T
            probabilities: Dict[str, float] = {}
            for row in out_bits:
                bits = "".join("1" if bit else "0" for bit in row)
                probabilities[bits] = probabilities.get(bits, 0.0) + weight
            results.append(
                SparseDistribution(
                    probabilities=probabilities,
                    num_bits=len(positions),
                    readout_applied=True,
                    metadata=(
                        {}
                        if survival is None
                        else {"flip_free_probability": flip_free * survival}
                    ),
                )
            )
        if stats is not None:
            stats["window_variants"] = stats.get("window_variants", 0) + len(used_variants)
        return results

    # -- packed fast path ----------------------------------------------

    def _run_packed(self, program, jobs, stats=None):
        """Frame sampling on the packed symplectic kernels.

        The per-event/per-trajectory python loops of the pure path collapse
        into four vectorized passes per job: one ``Generator.random(size=E)``
        call per trajectory (a numpy Generator produces the identical stream
        whether drawn singly or in blocks, so consumption matches the pure
        loop draw for draw), one broadcast comparison against the stacked
        cumulative matrix to choose every branch at once, one XOR-gather over
        the stacked ``(events, branches, words)`` mask tensor, and one
        block-draw readout pass.  Unpacking happens only at the output
        boundary, bit column by bit column.
        """
        n = program.num_active
        W = symplectic.num_words(max(1, n))
        table = _noise_mask_table(program)
        base, basis = self._ideal_structure(program)
        base_words = symplectic.pack_rows(base, n)
        basis_words = symplectic.pack_rows(basis, n) if basis.shape[0] else None
        stack_cache: Dict[Tuple[object, ...], Dict[str, object]] = (
            program.engine_cache.setdefault("stabilizer_frame_stacks", {})
        )
        survival_cache: Dict[Tuple[int, ...], Optional[float]] = (
            program.engine_cache.setdefault("stabilizer_frame_survival", {})
        )
        readout = self._readout_rates(program)
        used_variants: set = set()
        results = []
        for job in jobs:
            streams = job.streams
            T = len(streams)
            key = tuple(job.variants)
            stack = stack_cache.get(key)
            if stack is None:
                stack = self._variant_stack(program, table, job.variants)
                stack_cache[key] = stack
            used_variants.update(stack["used"])

            counts: np.ndarray = stack["counts"]
            E = counts.shape[0]
            if E:
                draws = np.empty((T, E), dtype=float)
                for t, stream in enumerate(streams):
                    draws[t] = stream.random(size=E)
                flips = self._sample_flips(stack, draws)
            else:
                flips = np.zeros((T, W), dtype=np.uint64)

            if basis_words is not None:
                k = basis.shape[0]
                free_bits = np.empty((T, k), dtype=np.uint8)
                for t, stream in enumerate(streams):
                    free_bits[t] = stream.integers(0, 2, size=k)
                for row in range(k):
                    flips[free_bits[:, row].astype(bool)] ^= basis_words[row]
            outcomes = base_words[None, :] ^ flips

            positions = job.outputs if job.outputs is not None else tuple(range(n))
            out_bits = np.empty((T, len(positions)), dtype=bool)
            for column, position in enumerate(positions):
                out_bits[:, column] = symplectic.bit_column(outcomes, position)
            noisy = [
                (column, readout[position])
                for column, position in enumerate(positions)
                if readout[position][0] > 0.0 or readout[position][1] > 0.0
            ]
            if noisy:
                rdraws = np.empty((T, len(noisy)), dtype=float)
                for t, stream in enumerate(streams):
                    rdraws[t] = stream.random(size=len(noisy))
                for j, (column, (p01, p10)) in enumerate(noisy):
                    flip = np.where(
                        out_bits[:, column], rdraws[:, j] < p10, rdraws[:, j] < p01
                    )
                    out_bits[:, column] ^= flip

            if positions not in survival_cache:
                survival_cache[positions] = self._readout_survival(
                    base, basis, positions, readout
                )
            survival = survival_cache[positions]

            weight = 1.0 / T
            probabilities: Dict[str, float] = {}
            # One ascii render of the whole (T, P) bit block; slicing it per
            # trajectory yields the same strings (and the same accumulation
            # order) as the pure path's per-row joins.
            P = out_bits.shape[1]
            text = (out_bits.astype(np.uint8) + np.uint8(48)).tobytes().decode("ascii")
            for t in range(T):
                bits = text[t * P : (t + 1) * P]
                probabilities[bits] = probabilities.get(bits, 0.0) + weight
            flip_free = stack["flip_free"]
            results.append(
                SparseDistribution(
                    probabilities=probabilities,
                    num_bits=len(positions),
                    readout_applied=True,
                    metadata=(
                        {}
                        if survival is None
                        else {"flip_free_probability": flip_free * survival}
                    ),
                )
            )
        if stats is not None:
            stats["window_variants"] = stats.get("window_variants", 0) + len(used_variants)
        return results

    #: When more than this fraction of all (trajectory, event) draws leave
    #: the first branch, the sparse scatter-XOR stops winning and the dense
    #: gather kernel (numba-compiled where available) takes over.  The
    #: threshold only picks an implementation — both compute identical flips.
    _DENSE_GATHER_FRACTION = 0.05

    @staticmethod
    def _sample_flips(stack: Dict[str, object], draws: np.ndarray) -> np.ndarray:
        """Select every trajectory's branch per event and XOR the frame masks.

        Branch selection is one ``searchsorted`` into the offset-flattened
        cumulative matrix (event ``e``'s block shifted by ``2e``, so a draw
        ``u + 2e`` lands inside its own block and the result minus ``e * B``
        is exactly the pure loop's ``searchsorted(cum, u, side="right")``
        clipped to the branch count).  Because realistic noise leaves almost
        every draw on the first branch, the XOR is computed as a precomputed
        first-branch baseline plus a scatter of the rare off-baseline deltas;
        when the off-baseline fraction is high the dense
        :func:`repro.simulators.symplectic.xor_gather_reduce` path runs
        instead.
        """
        T, E = draws.shape
        masks: np.ndarray = stack["masks"]
        clip: np.ndarray = stack["clip"]
        hot = draws >= stack["cum0"][None, :]
        t_idx, e_idx = np.nonzero(hot)
        if t_idx.size > T * E * StabilizerFrameEngine._DENSE_GATHER_FRACTION:
            flat = draws + stack["event_offset"][None, :]
            chosen = np.searchsorted(stack["flat_cum"], flat.ravel(), side="right")
            chosen = chosen.reshape(T, E) - stack["index_offset"][None, :]
            chosen = np.minimum(chosen, clip[None, :])
            return symplectic.xor_gather_reduce(masks, chosen)
        out = np.broadcast_to(stack["base_xor"], (T, masks.shape[2])).copy()
        if t_idx.size:
            u = draws[t_idx, e_idx] + stack["event_offset"][e_idx]
            choice = (
                np.searchsorted(stack["flat_cum"], u, side="right")
                - stack["index_offset"][e_idx]
            )
            choice = np.minimum(choice, clip[e_idx])
            delta = masks[e_idx, choice] ^ masks[e_idx, 0]
            np.bitwise_xor.at(out, t_idx, delta)
        return out

    @staticmethod
    def _variant_stack(program, table, variants) -> Dict[str, object]:
        """Stack one variant-tuple's applied events into contiguous arrays.

        Walks the table sequence exactly like the pure loop: pure-Z events
        (no X-component in any branch) are dropped deterministically — they
        never consume a draw on either path — and window flip-free weights
        multiply into the running product in encounter order, so the float
        result matches the pure path bit for bit.  Cached per variants tuple
        in ``engine_cache["stabilizer_frame_stacks"]``; ragged branch counts
        are padded with cumulative 2.0 / zero masks.
        """
        window_cache: Dict[
            Tuple[int, object], Tuple[List[Tuple[np.ndarray, np.ndarray]], float]
        ] = program.engine_cache.setdefault("stabilizer_frame_windows:packed", {})
        applied: List[Tuple[np.ndarray, np.ndarray]] = []
        flip_free = float(table["shared_flip_free"])
        used: List[Tuple[int, object]] = []
        for entry in table["sequence"]:
            if entry[0] == "noise":
                if entry[2].any():
                    applied.append((np.cumsum(entry[1]), entry[2]))
                continue
            widx = entry[1]
            variant = variants[widx]
            if variant == "skip":
                continue
            key = (widx, variant)
            cached = window_cache.get(key)
            if cached is None:
                events = _variant_mask_events(
                    program, table["suffix_maps"], widx, variant
                )
                weight = 1.0
                for probs, masks in events:
                    weight *= _flip_free_weight(probs, masks)
                cached = (events, weight)
                window_cache[key] = cached
            events, weight = cached
            flip_free *= weight
            if events:
                used.append(key)
            for probs, masks in events:
                if masks.any():
                    applied.append((np.cumsum(probs), masks))
        E = len(applied)
        W = symplectic.num_words(max(1, program.num_active))
        B = max((c.shape[0] for c, _ in applied), default=1)
        cum = np.full((E, B), 2.0, dtype=float)
        masks_stack = np.zeros((E, B, W), dtype=np.uint64)
        counts = np.empty(E, dtype=np.int64)
        for e, (cumulative, masks) in enumerate(applied):
            branches = cumulative.shape[0]
            cum[e, :branches] = cumulative
            masks_stack[e, :branches] = masks
            counts[e] = branches
        event_offset = 2.0 * np.arange(E, dtype=float)
        return {
            "cum": cum,
            "counts": counts,
            "clip": counts - 1,
            "masks": masks_stack,
            # _sample_flips precomputations: first-branch thresholds, the
            # offset-flattened cumulative blocks, and the XOR of every
            # event's first-branch mask (the all-draws-on-branch-0 baseline).
            "cum0": cum[:, 0].copy(),
            "flat_cum": (cum + event_offset[:, None]).ravel(),
            "event_offset": event_offset,
            "index_offset": np.arange(E, dtype=np.int64) * B,
            "base_xor": (
                np.bitwise_xor.reduce(masks_stack[:, 0, :], axis=0)
                if E
                else np.zeros(W, dtype=np.uint64)
            ),
            "flip_free": flip_free,
            "used": used,
        }

    # -- per-program structure -----------------------------------------

    #: Exact readout-survival averaging enumerates the ideal affine support;
    #: beyond this many free bits the expectation is not computed and the
    #: ``flip_free_probability`` metadata is *omitted* rather than reported
    #: approximately.
    _MAX_FREE_BITS_FOR_SURVIVAL = 12

    @staticmethod
    def _readout_survival(
        base: np.ndarray,
        basis: np.ndarray,
        positions: Tuple[int, ...],
        readout: Dict[int, Tuple[float, float]],
    ) -> Optional[float]:
        """Expected readout survival of an error-free run, exactly.

        ``E[prod_j P(bit j reads out correctly)]`` over the ideal outcome
        distribution — uniform on the affine support ``base ⊕ span(basis)``.
        Deterministic programs (the mirror workloads) have a single point;
        otherwise the support is enumerated (2^k points, capped by
        :data:`_MAX_FREE_BITS_FOR_SURVIVAL` — ``None`` beyond it, so the
        reported flip-free probability is exact or absent, never approximate).
        """
        k = basis.shape[0]
        if k > StabilizerFrameEngine._MAX_FREE_BITS_FOR_SURVIVAL:
            return None
        columns = list(positions)
        keep_zero = np.array([1.0 - readout[p][0] for p in positions])  # bit 0
        keep_one = np.array([1.0 - readout[p][1] for p in positions])   # bit 1
        base_bits = base[columns]
        if k == 0:
            return float(np.prod(np.where(base_bits, keep_one, keep_zero)))
        free = (
            (np.arange(2 ** k, dtype=np.uint32)[:, None] >> np.arange(k)[None, :]) & 1
        ).astype(np.uint8)
        bits = ((free @ basis[:, columns].astype(np.uint8)) % 2).astype(bool)
        bits ^= base_bits[None, :]
        survival = np.where(bits, keep_one[None, :], keep_zero[None, :]).prod(axis=1)
        return float(survival.mean())

    @staticmethod
    def _readout_rates(program) -> Dict[int, Tuple[float, float]]:
        """(p01, p10) per active-space position, from the calibration."""
        rates: Dict[int, Tuple[float, float]] = {}
        calibration = program.backend.calibration
        for position, qubit in enumerate(program.active):
            cal = calibration.qubit(qubit)
            rates[position] = (float(cal.readout_p01), float(cal.readout_p10))
        return rates

    def _ideal_structure(self, program) -> Tuple[np.ndarray, np.ndarray]:
        """Affine support of the ideal outcome: ``base ⊕ span(basis)``.

        A stabilizer state measured in the computational basis is uniform
        over an affine subspace; measuring the tableau once with forced-zero
        free bits gives the base point, and once per free bit (forced one)
        gives the subspace basis.  Mirror workloads are fully deterministic,
        so their basis is empty and every frame shares one ideal outcome.
        """
        cached = program.engine_cache.get("stabilizer_frames_ideal")
        if cached is not None:
            return cached
        n = program.num_active
        circuit = QuantumCircuit(n)
        for kind, payload in program.template:
            if kind == "op" and payload.gate is not None:
                circuit.append(
                    Gate(payload.gate.name, payload.positions, payload.gate.params)
                )
        final = StabilizerSimulator().run(circuit)
        rng = np.random.default_rng(0)

        def forced_pass(forced_free: Optional[int]) -> Tuple[np.ndarray, List[int]]:
            tableau = final.copy()
            bits = np.zeros(n, dtype=bool)
            free: List[int] = []
            for q in range(n):
                if tableau.is_deterministic(q):
                    bits[q] = bool(tableau.measure(q, rng))
                else:
                    free.append(q)
                    bits[q] = bool(
                        tableau.measure(q, rng, forced=1 if q == forced_free else 0)
                    )
            return bits, free

        base, free = forced_pass(None)
        basis = np.zeros((len(free), n), dtype=bool)
        for row, qubit in enumerate(free):
            bits, _ = forced_pass(qubit)
            basis[row] = bits ^ base
        structure = (base, basis)
        program.engine_cache["stabilizer_frames_ideal"] = structure
        return structure


register_engine(DensityMatrixEngine())
register_engine(TrajectoryEngine())
register_engine(StabilizerEngine())
register_engine(StabilizerFrameEngine())
