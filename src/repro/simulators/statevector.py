"""Dense statevector simulator.

Used for:

* computing the ideal (noise-free) output distribution of the input program,
  which defines the fidelity metric (Section 5.4);
* simulating Seeded Decoy Circuits that contain a handful of non-Clifford
  gates (Section 4.2.3) when they are small enough for a dense representation;
* verification of the other simulators in the test-suite.

Qubit ordering convention: qubit 0 is the **most significant bit** of the
output bitstrings, matching :meth:`QuantumCircuit.to_unitary`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate, gate_matrix

__all__ = ["StatevectorSimulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when a circuit cannot be simulated by the selected engine."""


class StatevectorSimulator:
    """Exact pure-state simulator for unitary circuits.

    Measurements are treated as terminal: they mark the measured qubits but do
    not collapse the state, and the output distribution is read from the final
    statevector.  Mid-circuit measurement followed by more gates on the same
    qubit is rejected.
    """

    def __init__(self, max_qubits: int = 24) -> None:
        self.max_qubits = int(max_qubits)

    # ------------------------------------------------------------------

    def run(self, circuit: QuantumCircuit) -> np.ndarray:
        """Return the final statevector as a flat array of length ``2**n``."""
        n = circuit.num_qubits
        if n > self.max_qubits:
            raise SimulationError(
                f"circuit has {n} qubits which exceeds the dense limit"
                f" of {self.max_qubits}"
            )
        state = np.zeros((2,) * n, dtype=complex)
        state[(0,) * n] = 1.0
        measured = set()
        for gate in circuit:
            if gate.is_barrier or gate.is_delay:
                continue
            if gate.is_measurement:
                measured.update(gate.qubits)
                continue
            if gate.name == "reset":
                state = self._reset(state, gate.qubits[0], n)
                continue
            if any(q in measured for q in gate.qubits):
                raise SimulationError(
                    "gate applied to an already-measured qubit; the statevector"
                    " engine only supports terminal measurements"
                )
            state = self._apply(state, gate, n)
        return state.reshape(-1)

    def probabilities(self, circuit: QuantumCircuit) -> np.ndarray:
        """Output probability vector over all ``2**n`` basis states."""
        amplitudes = self.run(circuit)
        probs = np.abs(amplitudes) ** 2
        total = probs.sum()
        if total <= 0:
            raise SimulationError("statevector collapsed to zero norm")
        return probs / total

    def counts(
        self,
        circuit: QuantumCircuit,
        shots: int = 1024,
        rng: Optional[np.random.Generator] = None,
    ) -> Dict[str, int]:
        """Sample measurement counts keyed by bitstrings (qubit 0 leftmost)."""
        rng = rng or np.random.default_rng()
        probs = self.probabilities(circuit)
        n = circuit.num_qubits
        samples = rng.multinomial(shots, probs)
        return {
            format(idx, f"0{n}b"): int(count)
            for idx, count in enumerate(samples)
            if count > 0
        }

    # ------------------------------------------------------------------

    @staticmethod
    def _apply(state: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
        matrix = gate_matrix(gate.name, gate.params)
        k = gate.num_qubits
        axes = list(gate.qubits)
        tensor = matrix.reshape((2,) * (2 * k))
        # tensordot contracts the gate's input indices with the state's axes and
        # moves the gate's output indices to the front of the result; the
        # permutation below restores the original qubit -> axis correspondence.
        state = np.tensordot(tensor, state, axes=(list(range(k, 2 * k)), axes))
        remaining = [q for q in range(num_qubits) if q not in axes]
        current = {q: i for i, q in enumerate(list(axes) + remaining)}
        perm = [current[q] for q in range(num_qubits)]
        return np.transpose(state, perm)

    @staticmethod
    def _reset(state: np.ndarray, qubit: int, num_qubits: int) -> np.ndarray:
        """Project-and-renormalise the qubit to |0>, discarding |1> weight."""
        moved = np.moveaxis(state, qubit, 0)
        new = np.zeros_like(moved)
        new[0] = moved[0]
        norm = np.linalg.norm(new)
        if norm < 1e-12:
            # the qubit was deterministically |1>: reset flips it to |0>
            new[0] = moved[1]
            norm = np.linalg.norm(new)
        new = new / norm
        return np.moveaxis(new, 0, qubit)
