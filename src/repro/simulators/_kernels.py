"""Optional compiled hot kernels for the packed symplectic engines.

The packed stabilizer kernels (:mod:`repro.simulators.symplectic`) are plain
numpy bitwise operations on ``uint64`` words; that is already fast enough for
the nightly scaling gates.  Where a JIT is available, the two loops that
numpy cannot fuse — the per-trajectory XOR-gather over stacked event masks
and the SWAR popcount on older numpy — are compiled through numba.

Availability is a *feature flag*, never a requirement:

* numba missing (the default container has none) → pure-numpy fallbacks, no
  warning, no behaviour change;
* ``REPRO_NUMBA=0`` → numba is ignored even when importable (the kill switch
  for debugging JIT-related differences);
* outputs are bit-identical by construction — the kernels compute the same
  words, so nothing downstream (store keys, ``SCHEMA_VERSION``, payloads)
  can observe which implementation ran.

The registered engines consult :data:`HAVE_NUMBA` through these wrappers;
there is no separate engine name for the compiled path.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "popcount64",
    "xor_gather_reduce",
]


def _numba_enabled() -> bool:
    if os.environ.get("REPRO_NUMBA", "") == "0":
        return False
    try:  # pragma: no cover - exercised only where numba is installed
        import numba  # noqa: F401
    except Exception:
        return False
    return True


#: True when the numba JIT path is importable and not disabled by
#: ``REPRO_NUMBA=0``; evaluated once at import.
HAVE_NUMBA: bool = _numba_enabled()


# ---------------------------------------------------------------------------
# popcount
# ---------------------------------------------------------------------------

if hasattr(np, "bitwise_count"):

    def popcount64(words: np.ndarray) -> np.ndarray:
        """Per-element popcount of a ``uint64`` array (numpy >= 2.0)."""
        return np.bitwise_count(words)

else:  # pragma: no cover - numpy < 2.0 fallback

    _M1 = np.uint64(0x5555555555555555)
    _M2 = np.uint64(0x3333333333333333)
    _M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    _H01 = np.uint64(0x0101010101010101)

    def popcount64(words: np.ndarray) -> np.ndarray:
        """SWAR popcount of a ``uint64`` array (pre-``bitwise_count`` numpy)."""
        v = words.astype(np.uint64, copy=True)
        v -= (v >> np.uint64(1)) & _M1
        v = (v & _M2) + ((v >> np.uint64(2)) & _M2)
        v = (v + (v >> np.uint64(4))) & _M4
        return ((v * _H01) >> np.uint64(56)).astype(np.uint8)


# ---------------------------------------------------------------------------
# XOR-gather over stacked event masks (the frame-accumulation hot loop)
# ---------------------------------------------------------------------------

#: Event-axis chunk of the numpy fallback: bounds the transient gather to
#: ``trajectories * CHUNK * words * 8`` bytes regardless of event count.
_XOR_CHUNK_EVENTS = 512


def _xor_gather_reduce_numpy(masks: np.ndarray, chosen: np.ndarray) -> np.ndarray:
    T, E = chosen.shape
    W = masks.shape[2]
    out = np.zeros((T, W), dtype=np.uint64)
    for start in range(0, E, _XOR_CHUNK_EVENTS):
        stop = min(E, start + _XOR_CHUNK_EVENTS)
        picked = masks[np.arange(start, stop)[None, :], chosen[:, start:stop]]
        out ^= np.bitwise_xor.reduce(picked, axis=1)
    return out


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    @njit(cache=False)
    def _xor_gather_reduce_jit(masks, chosen):
        T, E = chosen.shape
        W = masks.shape[2]
        out = np.zeros((T, W), dtype=np.uint64)
        for t in range(T):
            for e in range(E):
                row = masks[e, chosen[t, e]]
                for w in range(W):
                    out[t, w] ^= row[w]
        return out

    def xor_gather_reduce(masks: np.ndarray, chosen: np.ndarray) -> np.ndarray:
        """XOR of ``masks[e, chosen[t, e]]`` over events, per trajectory."""
        return _xor_gather_reduce_jit(
            np.ascontiguousarray(masks), np.ascontiguousarray(chosen)
        )

else:

    def xor_gather_reduce(masks: np.ndarray, chosen: np.ndarray) -> np.ndarray:
        """XOR of ``masks[e, chosen[t, e]]`` over events, per trajectory.

        ``masks`` is ``(events, branches, words)`` uint64, ``chosen`` is
        ``(trajectories, events)`` branch indices; returns the accumulated
        ``(trajectories, words)`` flip words.  Pure-numpy chunked fallback —
        the numba build replaces it with a fused loop.
        """
        return _xor_gather_reduce_numpy(masks, chosen)
