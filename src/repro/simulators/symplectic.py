"""Bit-packed symplectic kernels shared by the stabilizer engines.

Every symplectic object in the Clifford stack — tableau rows, propagated
Pauli masks, sampled error frames — is a vector of (x|z) bits over ``n``
qubits.  This module packs those bit-vectors into ``uint64`` words
(``ceil(n / 64)`` words per half-row, qubit ``q`` at bit ``q % 64`` of word
``q // 64``) and provides the whole-array kernels the engines share:

* :func:`pack_rows` / :func:`unpack_rows` — the boundary converters (used at
  measurement/output edges and by the differential tests; the engines never
  unpack mid-computation);
* :func:`conjugate_columns_packed` — symplectic conjugation of a block of
  packed Pauli rows by one Clifford gate, as two-or-three word-column ops
  regardless of row count;
* :func:`phase_g_sum` — the CHP phase accumulator reduced to popcount
  arithmetic: the per-qubit exponent ``g`` of Aaronson–Gottesman is ``+1``
  exactly on the qubit patterns ``(Z,X), (X,Y), (Y,Z)`` and ``-1`` on
  ``(Z,Y), (X,Z), (Y,X)``, so the column sum is the popcount of one OR-mask
  minus the popcount of the other — six AND-words per 64 qubits instead of
  six boolean masks per qubit;
* :func:`rowsum_rows` — all rowsums of one measurement collapse applied to
  every affected row at once;
* :func:`product_phase` — the sign of an ordered product of commuting packed
  Pauli rows (the deterministic-measurement reduction), vectorized through a
  prefix-XOR: every prefix product of stabilizer-group elements carries a
  real ``±1`` sign, so the mod-4 phase contributions can be summed in one
  shot instead of row-by-row.

The packed kernels are the default; ``REPRO_PURE_KERNELS=1``
(:func:`use_packed_kernels`) switches every consumer back to the pure
boolean-row path, which is kept alive as the differential-testing reference
(``tests/test_symplectic_diff.py``) and exercised by its own CI leg.
Outputs are bit-identical between the two paths by construction.

Where available, popcount and the frame XOR-gather ride the optional numba
kernels of :mod:`repro.simulators._kernels`; absence of numba only changes
speed, never results.
"""

from __future__ import annotations

import math
import os
from typing import Sequence, Tuple

import numpy as np

from ._kernels import popcount64, xor_gather_reduce

__all__ = [
    "WORD_BITS",
    "num_words",
    "use_packed_kernels",
    "pack_rows",
    "unpack_rows",
    "bit_column",
    "conjugate_columns_packed",
    "phase_g_sum",
    "rowsum_rows",
    "product_phase",
    "popcount64",
    "xor_gather_reduce",
]

#: Bits per packed word.
WORD_BITS = 64

_ONE = np.uint64(1)
_BYTE_WEIGHTS = (_ONE << (np.uint64(8) * np.arange(8, dtype=np.uint64))).astype(
    np.uint64
)


def use_packed_kernels() -> bool:
    """True unless ``REPRO_PURE_KERNELS=1`` demands the boolean-row path.

    Read at call time (not import time) so tests can flip the toggle per
    case; every packed/pure dispatch point in the stabilizer stack goes
    through this one predicate.
    """
    return os.environ.get("REPRO_PURE_KERNELS", "") != "1"


def num_words(num_qubits: int) -> int:
    """Packed words per ``num_qubits``-bit half-row (``ceil(n / 64)``)."""
    return (int(num_qubits) + WORD_BITS - 1) // WORD_BITS


# ---------------------------------------------------------------------------
# Boundary converters
# ---------------------------------------------------------------------------


def pack_rows(bits: np.ndarray, num_qubits: int | None = None) -> np.ndarray:
    """Pack boolean rows ``(..., n)`` into ``(..., ceil(n/64))`` uint64 words.

    Qubit ``q`` lands at bit ``q % 64`` of word ``q // 64`` (little-endian
    within the word); pad bits beyond ``n`` are zero.  Endianness-independent
    by construction (bytes are combined arithmetically, never reinterpreted).
    """
    bits = np.asarray(bits, dtype=bool)
    n = bits.shape[-1] if num_qubits is None else int(num_qubits)
    W = num_words(max(n, 1))
    padded = np.zeros(bits.shape[:-1] + (W * WORD_BITS,), dtype=np.uint8)
    padded[..., :n] = bits[..., :n]
    grouped = np.packbits(padded, axis=-1, bitorder="little")
    grouped = grouped.reshape(bits.shape[:-1] + (W, 8)).astype(np.uint64)
    return (grouped * _BYTE_WEIGHTS).sum(axis=-1, dtype=np.uint64)


def unpack_rows(words: np.ndarray, num_qubits: int) -> np.ndarray:
    """Inverse of :func:`pack_rows`: ``(..., W)`` words to ``(..., n)`` bools."""
    words = np.asarray(words, dtype=np.uint64)
    shifts = (np.uint64(8) * np.arange(8, dtype=np.uint64))
    as_bytes = ((words[..., None] >> shifts) & np.uint64(0xFF)).astype(np.uint8)
    flat = as_bytes.reshape(words.shape[:-1] + (words.shape[-1] * 8,))
    bits = np.unpackbits(flat, axis=-1, bitorder="little")
    return bits[..., : int(num_qubits)].astype(bool)


def bit_column(words: np.ndarray, qubit: int) -> np.ndarray:
    """Bit ``qubit`` of every packed row, as a boolean column."""
    w, s = divmod(int(qubit), WORD_BITS)
    return (words[..., w] & (_ONE << np.uint64(s))) != 0


# ---------------------------------------------------------------------------
# Packed Clifford conjugation (phase-free column updates)
# ---------------------------------------------------------------------------


def conjugate_columns_packed(
    xw: np.ndarray,
    zw: np.ndarray,
    name: str,
    qubits: Sequence[int],
    params: Sequence[float] = (),
) -> None:
    """Conjugate a block of packed Pauli rows by one Clifford gate, in place.

    The phase-free x/z update of ``P -> G P G†`` applied to every row of
    ``xw``/``zw`` (shape ``(rows, W)``) at once: each gate touches one or two
    word columns, so the cost is independent of the qubit count.  Phases are
    deliberately not tracked — mask propagation and the mirror-target
    derivation only need anticommutation structure.
    """
    if name in ("id", "i", "x", "y", "z"):
        return
    if name == "h":
        w, s = divmod(int(qubits[0]), WORD_BITS)
        mask = _ONE << np.uint64(s)
        delta = (xw[:, w] ^ zw[:, w]) & mask
        xw[:, w] ^= delta
        zw[:, w] ^= delta
    elif name in ("s", "sdg"):
        w, s = divmod(int(qubits[0]), WORD_BITS)
        mask = _ONE << np.uint64(s)
        zw[:, w] ^= xw[:, w] & mask
    elif name in ("sx", "sxdg"):
        w, s = divmod(int(qubits[0]), WORD_BITS)
        mask = _ONE << np.uint64(s)
        xw[:, w] ^= zw[:, w] & mask
    elif name in ("cx", "cnot"):
        wc, sc = divmod(int(qubits[0]), WORD_BITS)
        wt, st = divmod(int(qubits[1]), WORD_BITS)
        xc = (xw[:, wc] >> np.uint64(sc)) & _ONE
        zt = (zw[:, wt] >> np.uint64(st)) & _ONE
        xw[:, wt] ^= xc << np.uint64(st)
        zw[:, wc] ^= zt << np.uint64(sc)
    elif name == "cz":
        wa, sa = divmod(int(qubits[0]), WORD_BITS)
        wb, sb = divmod(int(qubits[1]), WORD_BITS)
        xa = (xw[:, wa] >> np.uint64(sa)) & _ONE
        xb = (xw[:, wb] >> np.uint64(sb)) & _ONE
        zw[:, wb] ^= xa << np.uint64(sb)
        zw[:, wa] ^= xb << np.uint64(sa)
    elif name == "swap":
        wa, sa = divmod(int(qubits[0]), WORD_BITS)
        wb, sb = divmod(int(qubits[1]), WORD_BITS)
        for parts in (xw, zw):
            a_bits = (parts[:, wa] >> np.uint64(sa)) & _ONE
            b_bits = (parts[:, wb] >> np.uint64(sb)) & _ONE
            delta = a_bits ^ b_bits
            parts[:, wa] ^= delta << np.uint64(sa)
            parts[:, wb] ^= delta << np.uint64(sb)
    elif name in ("rz", "u1", "p"):
        quarter_turns = int(round(float(params[0]) / (math.pi / 2))) % 4
        if quarter_turns in (1, 3):
            w, s = divmod(int(qubits[0]), WORD_BITS)
            mask = _ONE << np.uint64(s)
            zw[:, w] ^= xw[:, w] & mask
    else:
        raise ValueError(f"gate '{name}' is not Clifford-propagatable")


def compose_suffix_packed(
    x_of_x: np.ndarray,
    x_of_z: np.ndarray,
    name: str,
    qubits: Sequence[int],
    params: Sequence[float] = (),
) -> None:
    """Prepend one Clifford gate to a suffix conjugation map, in place.

    ``x_of_x[q]``/``x_of_z[q]`` hold the packed *x-parts* of the images of
    ``X_q``/``Z_q`` under conjugation by some gate suffix ``S``.  This
    updates them to the map of ``S ∘ G``: the image of ``X_q`` becomes
    ``S(G X_q G†)``, a GF(2) combination of the *existing* rows, so each
    gate costs one or two row XOR/swap operations of ``W`` words — walking a
    template backward builds every intermediate suffix map in
    ``O(gates · W)`` total, independent of how many Pauli rows will later be
    pushed through those maps.  Phase-free, with exactly the gate alphabet
    (and the same quarter-turn rounding) as :func:`conjugate_columns_packed`.
    """
    if name in ("id", "i", "x", "y", "z"):
        return
    if name == "h":
        a = int(qubits[0])
        x_of_x[a], x_of_z[a] = x_of_z[a].copy(), x_of_x[a].copy()
    elif name in ("s", "sdg"):
        a = int(qubits[0])
        x_of_x[a] ^= x_of_z[a]
    elif name in ("sx", "sxdg"):
        a = int(qubits[0])
        x_of_z[a] ^= x_of_x[a]
    elif name in ("cx", "cnot"):
        c, t = int(qubits[0]), int(qubits[1])
        x_of_x[c] ^= x_of_x[t]
        x_of_z[t] ^= x_of_z[c]
    elif name == "cz":
        a, b = int(qubits[0]), int(qubits[1])
        x_of_x[a] ^= x_of_z[b]
        x_of_x[b] ^= x_of_z[a]
    elif name == "swap":
        a, b = int(qubits[0]), int(qubits[1])
        x_of_x[[a, b]] = x_of_x[[b, a]]
        x_of_z[[a, b]] = x_of_z[[b, a]]
    elif name in ("rz", "u1", "p"):
        quarter_turns = int(round(float(params[0]) / (math.pi / 2))) % 4
        if quarter_turns in (1, 3):
            a = int(qubits[0])
            x_of_x[a] ^= x_of_z[a]
    else:
        raise ValueError(f"gate '{name}' is not Clifford-propagatable")


# ---------------------------------------------------------------------------
# Phase kernels (popcount arithmetic)
# ---------------------------------------------------------------------------


def phase_g_sum(
    x1: np.ndarray, z1: np.ndarray, x2: np.ndarray, z2: np.ndarray
) -> np.ndarray:
    """Column-summed CHP phase exponent ``sum_q g((x1,z1)_q, (x2,z2)_q)``.

    ``g`` is ``+1`` on qubit patterns ``(Z,X), (X,Y), (Y,Z)``, ``-1`` on
    ``(Z,Y), (X,Z), (Y,X)`` and ``0`` elsewhere; every pattern contains at
    least one *set* bit from each operand, so zero pad bits contribute
    nothing and the whole sum is two popcounts.  Broadcasts over leading
    axes; the trailing axis is the packed word axis.
    """
    plus = (
        (~x1 & z1 & x2 & ~z2)
        | (x1 & ~z1 & x2 & z2)
        | (x1 & z1 & ~x2 & z2)
    )
    minus = (
        (~x1 & z1 & x2 & z2)
        | (x1 & ~z1 & ~x2 & z2)
        | (x1 & z1 & x2 & ~z2)
    )
    return popcount64(plus).sum(axis=-1).astype(np.int64) - popcount64(minus).sum(
        axis=-1
    ).astype(np.int64)


def rowsum_rows(
    xw: np.ndarray,
    zw: np.ndarray,
    r: np.ndarray,
    rows: np.ndarray,
    source: int,
) -> None:
    """CHP rowsum of row ``source`` into every row of ``rows``, at once.

    Each target row is multiplied by the (unchanged) source row; because all
    rowsums of one measurement collapse share the source, they are
    independent and vectorize.  Phases follow Aaronson–Gottesman: the new
    sign bit is set iff ``2 r_h + 2 r_i + sum_q g(row_i, row_h) ≡ 2 (mod 4)``.
    """
    phase = (
        2 * r[rows].astype(np.int64)
        + 2 * int(r[source])
        + phase_g_sum(xw[source][None, :], zw[source][None, :], xw[rows], zw[rows])
    )
    r[rows] = (phase % 4) == 2
    xw[rows] ^= xw[source][None, :]
    zw[rows] ^= zw[source][None, :]


def product_phase(
    xw: np.ndarray, zw: np.ndarray, r: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, bool]:
    """Ordered product of commuting packed Pauli rows: ``(x, z, sign)``.

    Folds the rows top-down exactly like the sequential ``rowsum_into``
    reduction of the pure tableau, but in one vectorized pass: the x/z part
    of the accumulator before step ``i`` is the prefix-XOR of rows
    ``0..i-1``, and since every prefix here is a stabilizer-group element
    (real ``±1`` sign, phase ``0`` or ``2`` mod 4), the per-step mod-4
    reductions commute with summing all contributions first.  Returns the
    packed product row and its sign bit (True = ``-1``).
    """
    if xw.shape[0] == 0:
        W = xw.shape[1] if xw.ndim == 2 else 0
        zeros = np.zeros(W, dtype=np.uint64)
        return zeros, zeros.copy(), False
    prefix_x = np.bitwise_xor.accumulate(xw, axis=0)
    prefix_z = np.bitwise_xor.accumulate(zw, axis=0)
    # Accumulator state before row i: prefix of rows < i (zero before row 0,
    # which contributes g(row, 0) = 0 — every g pattern needs a set bit from
    # the accumulator side too).
    before_x = np.zeros_like(xw)
    before_z = np.zeros_like(zw)
    before_x[1:] = prefix_x[:-1]
    before_z[1:] = prefix_z[:-1]
    total = 2 * int(r.sum()) + int(phase_g_sum(xw, zw, before_x, before_z).sum())
    return prefix_x[-1].copy(), prefix_z[-1].copy(), (total % 4) == 2
