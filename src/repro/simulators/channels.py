"""Kraus-operator builders for the noise channels used by the executor.

All channels are returned as lists of Kraus matrices ``[K_0, K_1, ...]`` with
``sum_k K_k^dagger K_k = I``.  Single-qubit channels are 2x2, two-qubit
channels 4x4.  The noisy executor applies them to a density matrix via
:meth:`DensityMatrixSimulator.apply_kraus`.

The channel set mirrors what the ADAPT evaluation needs:

* ``depolarizing`` for gate errors (single- and two-qubit),
* ``amplitude_damping`` for T1 relaxation during idle windows,
* ``phase_damping`` for dephasing during idle windows — the component that
  dynamical decoupling can refocus,
* ``bit_flip`` / ``phase_flip`` as simple building blocks for tests,
* ``measurement_confusion`` as a classical assignment-error matrix.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "ChannelError",
    "amplitude_damping",
    "bit_flip",
    "depolarizing",
    "depolarizing_two_qubit",
    "identity_channel",
    "is_valid_channel",
    "measurement_confusion",
    "phase_damping",
    "phase_flip",
    "thermal_relaxation",
    "compose_channels",
]


class ChannelError(ValueError):
    """Raised when a channel is requested with invalid parameters."""


def _check_probability(p: float, name: str) -> float:
    if not 0.0 <= p <= 1.0:
        raise ChannelError(f"{name} must be in [0, 1], got {p}")
    return float(p)


def identity_channel(num_qubits: int = 1) -> List[np.ndarray]:
    """The trivial channel."""
    return [np.eye(2 ** num_qubits, dtype=complex)]


def depolarizing(p: float) -> List[np.ndarray]:
    """Single-qubit depolarizing channel with error probability ``p``.

    With probability ``p`` one of X, Y, Z is applied uniformly at random.
    """
    p = _check_probability(p, "depolarizing probability")
    i = np.eye(2, dtype=complex)
    x = np.array([[0, 1], [1, 0]], dtype=complex)
    y = np.array([[0, -1j], [1j, 0]], dtype=complex)
    z = np.array([[1, 0], [0, -1]], dtype=complex)
    return [
        math.sqrt(1 - p) * i,
        math.sqrt(p / 3) * x,
        math.sqrt(p / 3) * y,
        math.sqrt(p / 3) * z,
    ]


@lru_cache(maxsize=4096)
def _depolarizing_two_qubit_kraus(p: float) -> Tuple[np.ndarray, ...]:
    """The 16 Kraus matrices for one error probability, built once.

    A device has one two-qubit error rate per *link* but the compiler asks
    for the channel once per scheduled CNOT, so at device scale the same
    handful of probabilities would otherwise rebuild the same 16 ``np.kron``
    products tens of thousands of times — the single largest compile cost of
    a 255-qubit program before this cache.
    """
    i = np.eye(2, dtype=complex)
    x = np.array([[0, 1], [1, 0]], dtype=complex)
    y = np.array([[0, -1j], [1j, 0]], dtype=complex)
    z = np.array([[1, 0], [0, -1]], dtype=complex)
    paulis = [i, x, y, z]
    kraus: List[np.ndarray] = []
    for a_idx, a in enumerate(paulis):
        for b_idx, b in enumerate(paulis):
            weight = 1 - p if (a_idx, b_idx) == (0, 0) else p / 15
            kraus.append(math.sqrt(weight) * np.kron(a, b))
    return tuple(kraus)


def depolarizing_two_qubit(p: float) -> List[np.ndarray]:
    """Two-qubit depolarizing channel with error probability ``p``.

    With probability ``p`` one of the 15 non-identity two-qubit Paulis is
    applied uniformly at random.  Used for CNOT gate errors.  Callers own
    the returned matrices (they are fresh copies of a memoized build).
    """
    p = _check_probability(p, "depolarizing probability")
    return [k.copy() for k in _depolarizing_two_qubit_kraus(p)]


def bit_flip(p: float) -> List[np.ndarray]:
    """Bit-flip channel: X with probability ``p``."""
    p = _check_probability(p, "bit-flip probability")
    i = np.eye(2, dtype=complex)
    x = np.array([[0, 1], [1, 0]], dtype=complex)
    return [math.sqrt(1 - p) * i, math.sqrt(p) * x]


def phase_flip(p: float) -> List[np.ndarray]:
    """Phase-flip channel: Z with probability ``p``."""
    p = _check_probability(p, "phase-flip probability")
    i = np.eye(2, dtype=complex)
    z = np.array([[1, 0], [0, -1]], dtype=complex)
    return [math.sqrt(1 - p) * i, math.sqrt(p) * z]


def amplitude_damping(gamma: float) -> List[np.ndarray]:
    """Amplitude damping with decay probability ``gamma`` (T1 relaxation)."""
    gamma = _check_probability(gamma, "amplitude damping gamma")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex)
    return [k0, k1]


def phase_damping(lam: float) -> List[np.ndarray]:
    """Phase damping with dephasing probability ``lam`` (pure T2 decay)."""
    lam = _check_probability(lam, "phase damping lambda")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - lam)]], dtype=complex)
    k1 = np.array([[0, 0], [0, math.sqrt(lam)]], dtype=complex)
    return [k0, k1]


def thermal_relaxation(duration_ns: float, t1_ns: float, t2_ns: float) -> List[np.ndarray]:
    """Combined T1/T2 relaxation over ``duration_ns`` nanoseconds.

    Implemented as amplitude damping (rate ``1/T1``) composed with pure phase
    damping carrying the excess dephasing (``1/T2 - 1/(2*T1)``), the standard
    decomposition for ``T2 <= 2*T1``.
    """
    if duration_ns < 0:
        raise ChannelError("duration must be non-negative")
    if t1_ns <= 0 or t2_ns <= 0:
        raise ChannelError("T1 and T2 must be positive")
    effective_t2 = min(t2_ns, 2 * t1_ns)
    gamma = 1.0 - math.exp(-duration_ns / t1_ns)
    pure_dephasing_rate = max(0.0, 1.0 / effective_t2 - 1.0 / (2 * t1_ns))
    lam = 1.0 - math.exp(-2.0 * duration_ns * pure_dephasing_rate)
    return compose_channels(amplitude_damping(gamma), phase_damping(lam))


def compose_channels(
    first: Sequence[np.ndarray], second: Sequence[np.ndarray]
) -> List[np.ndarray]:
    """Sequential composition: ``second`` applied after ``first``."""
    return [np.asarray(b) @ np.asarray(a) for a in first for b in second]


def measurement_confusion(p01: float, p10: float) -> np.ndarray:
    """Classical 2x2 assignment matrix.

    ``p01`` is the probability of reading 1 when the qubit is 0, and ``p10``
    the probability of reading 0 when the qubit is 1 (readout of |1> is
    typically worse on IBMQ hardware, so ``p10 > p01`` by default in the
    calibrations).  Columns are true states, rows are observed outcomes.
    """
    p01 = _check_probability(p01, "p01")
    p10 = _check_probability(p10, "p10")
    return np.array([[1 - p01, p10], [p01, 1 - p10]], dtype=float)


def is_valid_channel(kraus: Sequence[np.ndarray], atol: float = 1e-9) -> bool:
    """Check the completeness relation ``sum_k K_k^dagger K_k = I``."""
    kraus = [np.asarray(k, dtype=complex) for k in kraus]
    if not kraus:
        return False
    dim = kraus[0].shape[1]
    total = np.zeros((dim, dim), dtype=complex)
    for k in kraus:
        total += k.conj().T @ k
    return bool(np.allclose(total, np.eye(dim), atol=atol))
