"""Simulation engines: statevector, density matrix, stabilizer, extended stabilizer."""

from .statevector import SimulationError, StatevectorSimulator
from .density_matrix import DensityMatrixSimulator
from .stabilizer import CliffordTableau, StabilizerSimulator
from .extended_stabilizer import ExtendedStabilizerSimulator, SimulationReport
from . import channels

__all__ = [
    "CliffordTableau",
    "DensityMatrixSimulator",
    "ExtendedStabilizerSimulator",
    "SimulationError",
    "SimulationReport",
    "StabilizerSimulator",
    "StatevectorSimulator",
    "channels",
]
