"""Simulation engines: statevector, density matrix, stabilizer, extended stabilizer.

:mod:`repro.simulators.engines` additionally hosts the pluggable
execution-engine registry consumed by ``repro.hardware`` (density matrix,
trajectories, the Clifford stabilizer fast path, and the sparse
device-scale ``stabilizer_frames`` path).
"""

from .statevector import SimulationError, StatevectorSimulator
from .density_matrix import DensityMatrixSimulator
from .stabilizer import CliffordTableau, PackedCliffordTableau, StabilizerSimulator
from .extended_stabilizer import ExtendedStabilizerSimulator, SimulationReport
from . import symplectic
from .engines import (
    ExecutionEngine,
    SparseDistribution,
    available_engines,
    get_engine,
    register_engine,
    select_engine,
)
from . import channels

__all__ = [
    "CliffordTableau",
    "DensityMatrixSimulator",
    "ExecutionEngine",
    "ExtendedStabilizerSimulator",
    "SimulationError",
    "PackedCliffordTableau",
    "SimulationReport",
    "SparseDistribution",
    "StabilizerSimulator",
    "StatevectorSimulator",
    "available_engines",
    "channels",
    "get_engine",
    "register_engine",
    "select_engine",
    "symplectic",
]
