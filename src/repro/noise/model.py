"""Gate- and readout-level noise model built from a calibration snapshot.

This covers the paper's "active errors" (Section 2.2): depolarizing error on
single-qubit gates (~0.1%), two-qubit gates (1-2%) and asymmetric readout
assignment error (~2-4%).  Idling errors are handled separately by
:mod:`repro.noise.idling` because they depend on the schedule, the concurrent
CNOT activity and the DD plan rather than on individual gates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.gates import Gate
from ..hardware.calibration import Calibration
from ..simulators import channels

__all__ = ["NoiseOp", "GateNoiseModel"]


@dataclass(frozen=True)
class NoiseOp:
    """A noise operation to be applied by an execution engine.

    ``kind`` is one of:

    * ``"kraus"`` — payload is a list of Kraus matrices;
    * ``"rz"`` / ``"rx"`` — payload is a rotation angle in radians (coherent
      error);
    * ``"gaussian_phase"`` — payload is the standard deviation (radians) of a
      zero-mean Gaussian random Z rotation (quasi-static dephasing).  The
      density-matrix engine converts it into an equivalent phase-damping
      channel; the trajectory engine samples a concrete angle per trajectory.
    """

    kind: str
    qubits: Tuple[int, ...]
    payload: object

    def __post_init__(self) -> None:
        if self.kind not in ("kraus", "rz", "rx", "gaussian_phase"):
            raise ValueError(f"unknown noise op kind '{self.kind}'")


class GateNoiseModel:
    """Maps gates to error channels using per-qubit / per-link calibration."""

    def __init__(self, calibration: Calibration) -> None:
        self._calibration = calibration

    @property
    def calibration(self) -> Calibration:
        return self._calibration

    # ------------------------------------------------------------------

    def gate_noise(self, gate: Gate) -> List[NoiseOp]:
        """Noise operations to apply after the ideal unitary of ``gate``.

        DD pulses (``gate.is_dd_pulse``) return no noise here: their cost is
        accounted for by the idle-window model, which knows the pulse count
        and the per-qubit pulse calibration.
        """
        if gate.is_barrier or gate.is_delay or gate.is_measurement:
            return []
        if gate.is_dd_pulse:
            return []
        if gate.name == "reset":
            return []
        if gate.is_two_qubit:
            error = self._two_qubit_error(gate)
            if error <= 0:
                return []
            return [
                NoiseOp(
                    kind="kraus",
                    qubits=tuple(gate.qubits),
                    payload=channels.depolarizing_two_qubit(error),
                )
            ]
        qubit = gate.qubits[0]
        error = self._calibration.qubit(qubit).sq_error
        if error <= 0:
            return []
        return [
            NoiseOp(kind="kraus", qubits=(qubit,), payload=channels.depolarizing(error))
        ]

    def _two_qubit_error(self, gate: Gate) -> float:
        a, b = gate.qubits
        try:
            base = self._calibration.cnot_error(a, b)
        except KeyError:
            # Gate on a pair that is not a physical link (pre-routing circuit):
            # charge the average link error instead of failing.
            base = self._calibration.average_cnot_error()
        if gate.name == "swap":
            # A SWAP decomposes into three CNOTs.
            return 1.0 - (1.0 - base) ** 3
        return base

    # ------------------------------------------------------------------

    def readout_confusion(self, qubit: int) -> np.ndarray:
        cal = self._calibration.qubit(qubit)
        return channels.measurement_confusion(cal.readout_p01, cal.readout_p10)

    def apply_readout_error(
        self, probabilities: np.ndarray, qubits: Sequence[int]
    ) -> np.ndarray:
        """Apply per-qubit classical assignment errors to a probability vector.

        ``probabilities`` is indexed by bitstrings over ``qubits`` with the
        first qubit as the most significant bit.
        """
        n = len(qubits)
        probs = np.asarray(probabilities, dtype=float).reshape((2,) * n)
        for position, qubit in enumerate(qubits):
            confusion = self.readout_confusion(qubit)
            probs = np.moveaxis(
                np.tensordot(confusion, probs, axes=([1], [position])), 0, position
            )
        flat = probs.reshape(-1)
        flat[flat < 0] = 0.0
        return flat / flat.sum()
