"""Noise modelling: gate errors, readout errors and idle-window decoherence."""

from .model import GateNoiseModel, NoiseOp
from .idling import IdleNoiseModel, IdleWindowEffect

__all__ = ["GateNoiseModel", "IdleNoiseModel", "IdleWindowEffect", "NoiseOp"]
