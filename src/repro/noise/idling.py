"""Idle-window noise: decoherence, crosstalk amplification and DD refocusing.

This module is the behavioural model that stands in for the physics of the
IBMQ devices (DESIGN.md, substitution table).  For every idle window the
executor asks for the noise operations to apply to the idle qubit, given

* the window duration,
* the CNOT activity concurrent with the window (link + overlap time),
* the DD pulse train protecting the window, if any, and
* the per-qubit / per-pair calibration values.

The model captures the phenomena the paper characterises in Section 3:

1. an idle qubit relaxes (T1) and dephases (Markovian T2 component) — neither
   is refocusable by DD;
2. low-frequency *quasi-static* dephasing and a *coherent* ZZ-like phase
   accumulate while the qubit idles; both are amplified (up to ~10x) while
   CNOTs run on nearby links (crosstalk) — this is the component DD refocuses;
3. DD refocusing quality depends on pulse spacing relative to the noise
   correlation time, so densely repeated XY4 outperforms the sparse IBMQ-DD
   pair for long windows (Figure 16);
4. DD is not free: every pulse adds depolarizing error, and qubits with
   miscalibrated pulses accumulate a coherent over-rotation, which is why DD
   *hurts* some qubits (Figure 5) and why applying DD to every qubit is
   sub-optimal (Figure 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..dd.sequences import DDPulseTrain
from ..hardware.calibration import Calibration
from ..simulators import channels
from .model import NoiseOp

__all__ = ["IdleWindowEffect", "IdleNoiseModel"]

Edge = Tuple[int, int]


@dataclass(frozen=True)
class IdleWindowEffect:
    """Aggregate noise accumulated by one qubit over one idle window."""

    qubit: int
    duration_ns: float
    t1_decay: float              # amplitude damping probability
    markovian_dephasing: float   # phase damping probability (not refocusable)
    static_phase_std: float      # std-dev of the quasi-static random phase (rad)
    coherent_phase: float        # deterministic accumulated phase (rad)
    dd_suppression: float        # factor applied to the two terms above (1 = no DD)
    dd_pulse_count: int
    dd_pulse_depolarizing: float  # combined depolarizing probability of the pulses
    dd_coherent_rotation: float   # accumulated coherent pulse error (rad, X axis)

    def noise_ops(self) -> List[NoiseOp]:
        """Noise operations equivalent to this window, in application order."""
        ops: List[NoiseOp] = []
        q = (self.qubit,)
        if self.t1_decay > 0:
            ops.append(NoiseOp("kraus", q, channels.amplitude_damping(self.t1_decay)))
        if self.markovian_dephasing > 0:
            ops.append(NoiseOp("kraus", q, channels.phase_damping(self.markovian_dephasing)))
        effective_std = self.static_phase_std * self.dd_suppression
        if effective_std > 0:
            ops.append(NoiseOp("gaussian_phase", q, effective_std))
        effective_phase = self.coherent_phase * self.dd_suppression
        if abs(effective_phase) > 0:
            ops.append(NoiseOp("rz", q, effective_phase))
        # Nonzero check, not a sign check: miscalibrated pulses can over- OR
        # under-rotate (negative dd_coherent_error calibrations), and the
        # closed-form estimate (fidelity_proxy) counts the rotation through
        # cos² either way — the applied noise must agree.
        if self.dd_coherent_rotation != 0:
            ops.append(NoiseOp("rx", q, self.dd_coherent_rotation))
        if self.dd_pulse_depolarizing > 0:
            ops.append(NoiseOp("kraus", q, channels.depolarizing(self.dd_pulse_depolarizing)))
        return ops

    @property
    def is_dd_protected(self) -> bool:
        return self.dd_pulse_count > 0


class IdleNoiseModel:
    """Computes :class:`IdleWindowEffect` values from calibration data."""

    def __init__(self, calibration: Calibration) -> None:
        self._calibration = calibration

    @property
    def calibration(self) -> Calibration:
        return self._calibration

    # ------------------------------------------------------------------

    def window_effect(
        self,
        qubit: int,
        duration_ns: float,
        concurrent_cnots: Sequence[Tuple[Edge, float]] = (),
        dd_train: Optional[DDPulseTrain] = None,
    ) -> IdleWindowEffect:
        """Noise accumulated by ``qubit`` idling for ``duration_ns``.

        Args:
            concurrent_cnots: ``(link, overlap_ns)`` pairs describing CNOT
                activity overlapping the window (from
                :meth:`GateSequenceTable.concurrent_cnots`).
            dd_train: the DD pulse train protecting this window, or ``None``.
        """
        if duration_ns < 0:
            raise ValueError("window duration must be non-negative")
        cal = self._calibration.qubit(qubit)
        duration = float(duration_ns)

        t1_decay = 1.0 - math.exp(-duration / cal.t1_ns)
        pure_rate = max(0.0, 1.0 / cal.t2_ns - 1.0 / (2.0 * cal.t1_ns))
        markovian = 1.0 - math.exp(-2.0 * duration * pure_rate)

        # Quasi-static dephasing: the background rate, amplified while CNOTs
        # are active on other links (the crosstalk the paper measures to make
        # an idle qubit ~10x more error prone).
        effective_time = duration
        coherent_phase = cal.background_zz_rate * duration
        for link, overlap in concurrent_cnots:
            entry = self._calibration.crosstalk_on(qubit, link)
            effective_time += (entry.dephasing_multiplier - 1.0) * overlap
            coherent_phase += entry.zz_shift_rate * overlap
        static_std = cal.static_dephasing_rate * effective_time

        suppression = 1.0
        pulse_count = 0
        pulse_depolarizing = 0.0
        coherent_rotation = 0.0
        if dd_train is not None and dd_train.num_pulses > 0:
            suppression = self.dd_suppression_factor(qubit, dd_train)
            pulse_count = dd_train.num_pulses
            pulse_depolarizing = 1.0 - (1.0 - cal.dd_pulse_error) ** pulse_count
            coherent_rotation = cal.dd_coherent_error * pulse_count

        return IdleWindowEffect(
            qubit=qubit,
            duration_ns=duration,
            t1_decay=t1_decay,
            markovian_dephasing=markovian,
            static_phase_std=static_std,
            coherent_phase=coherent_phase,
            dd_suppression=suppression,
            dd_pulse_count=pulse_count,
            dd_pulse_depolarizing=min(1.0, pulse_depolarizing),
            dd_coherent_rotation=coherent_rotation,
        )

    def dd_suppression_factor(self, qubit: int, dd_train: DDPulseTrain) -> float:
        """Residual fraction of refocusable noise that survives the DD train.

        The factor interpolates between the per-qubit floor (best achievable
        refocusing) and 1 (no benefit) as the pulse spacing approaches the
        noise correlation time: closely spaced pulses refocus low-frequency
        noise well, sparse pulses do not.
        """
        cal = self._calibration.qubit(qubit)
        spacing = max(dd_train.average_spacing, 1e-9)
        ratio = spacing / max(cal.noise_correlation_ns, 1e-9)
        return float(min(1.0, cal.dd_floor + ratio))

    # ------------------------------------------------------------------

    def fidelity_proxy(self, effect: IdleWindowEffect, equator_weight: float = 0.5) -> float:
        """Closed-form estimate of the idle qubit's state fidelity.

        Useful for quick characterisation sweeps and sanity tests without a
        full circuit simulation: coherences decay with every dephasing source
        while populations decay with T1 and the DD pulse errors.
        """
        dephase = math.exp(-(effect.static_phase_std * effect.dd_suppression) ** 2 / 2.0)
        dephase *= math.sqrt(max(0.0, 1.0 - effect.markovian_dephasing))
        dephase *= math.cos(effect.coherent_phase * effect.dd_suppression)
        depol = 1.0 - 2.0 * effect.dd_pulse_depolarizing / 3.0
        relax = 1.0 - effect.t1_decay / 2.0
        pulse_coherent = math.cos(effect.dd_coherent_rotation / 2.0) ** 2
        equator = 0.5 * (1.0 + max(-1.0, dephase) * depol) * pulse_coherent
        pole = relax * depol * pulse_coherent
        fidelity = equator_weight * equator + (1.0 - equator_weight) * pole
        return float(max(0.0, min(1.0, fidelity)))
