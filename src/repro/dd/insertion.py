"""DD insertion: filling idle windows of selected qubits with pulse trains.

A *DD assignment* is the subset of program qubits on which DD is enabled — the
bitstrings the paper enumerates ("000000" = no qubit, "111111" = all qubits,
Figure 8).  Given a Gate Sequence Table, an assignment and a protocol, this
module produces a :class:`DDPlan`: one pulse train per eligible idle window.
The plan is what the noisy executor consumes; it can also be materialised into
an explicit circuit (pulses + delays) for inspection or export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate
from ..core.gst import GateSequenceTable, IdleWindow
from .sequences import DDPulseTrain, DDSequence, get_sequence

__all__ = [
    "DDAssignment",
    "DDPlan",
    "WINDOW_KEY_ATOL_NS",
    "plan_dd",
    "materialize_dd_circuit",
]


@dataclass(frozen=True)
class DDAssignment:
    """The subset of qubits that receive DD pulses during idle windows."""

    qubits: frozenset

    def __post_init__(self) -> None:
        object.__setattr__(self, "qubits", frozenset(int(q) for q in self.qubits))

    @classmethod
    def none(cls) -> "DDAssignment":
        return cls(qubits=frozenset())

    @classmethod
    def all(cls, qubits: Iterable[int]) -> "DDAssignment":
        return cls(qubits=frozenset(qubits))

    @classmethod
    def from_bitstring(cls, bits: str, qubits: Sequence[int]) -> "DDAssignment":
        """Decode a combination string like ``"010100"``.

        ``bits[i]`` corresponds to ``qubits[i]``; '1' enables DD on that qubit.
        """
        if len(bits) != len(qubits):
            raise ValueError(
                f"bitstring length {len(bits)} does not match {len(qubits)} qubits"
            )
        selected = {q for bit, q in zip(bits, qubits) if bit == "1"}
        return cls(qubits=frozenset(selected))

    def to_bitstring(self, qubits: Sequence[int]) -> str:
        return "".join("1" if q in self.qubits else "0" for q in qubits)

    def enabled(self, qubit: int) -> bool:
        return qubit in self.qubits

    def __contains__(self, qubit: int) -> bool:
        return qubit in self.qubits

    def __len__(self) -> int:
        return len(self.qubits)


#: Window-endpoint tolerance (ns) of :meth:`DDPlan.train_for`.  Schedules are
#: floating-point sums, so a window recomputed through a different arithmetic
#: path (e.g. a fresh ALAP pass) can differ from the planned one by rounding
#: noise; anything within a micro-nanosecond is the same physical window.
WINDOW_KEY_ATOL_NS = 1e-6


@dataclass
class DDPlan:
    """Pulse trains keyed by the idle window they protect."""

    assignment: DDAssignment
    sequence_name: str
    trains: Dict[Tuple[int, float, float], DDPulseTrain] = field(default_factory=dict)
    #: Lazily built per-qubit view of ``trains`` for the tolerance fallback
    #: (rebuilt after ``add``); misses on unprotected qubits stay O(1).
    _qubit_index: Optional[Dict[int, List[Tuple[float, float, DDPulseTrain]]]] = field(
        default=None, repr=False, compare=False
    )

    def train_for(self, window: IdleWindow) -> Optional[DDPulseTrain]:
        """The train protecting ``window``, tolerant to float rounding.

        Exact float keys made a window recomputed through a different
        arithmetic path silently return no train; the exact-key lookup is
        kept as the fast path, with a per-qubit tolerance scan
        (:data:`WINDOW_KEY_ATOL_NS`) as the fallback.
        """
        exact = self.trains.get((window.qubit, window.start, window.end))
        if exact is not None:
            return exact
        if self._qubit_index is None:
            index: Dict[int, List[Tuple[float, float, DDPulseTrain]]] = {}
            for (qubit, start, end), train in self.trains.items():
                index.setdefault(qubit, []).append((start, end, train))
            self._qubit_index = index
        for start, end, train in self._qubit_index.get(window.qubit, ()):
            if (
                abs(start - window.start) <= WINDOW_KEY_ATOL_NS
                and abs(end - window.end) <= WINDOW_KEY_ATOL_NS
            ):
                return train
        return None

    def add(self, window: IdleWindow, train: DDPulseTrain) -> None:
        self.trains[(window.qubit, window.start, window.end)] = train
        self._qubit_index = None

    @property
    def num_protected_windows(self) -> int:
        return len(self.trains)

    @property
    def total_pulses(self) -> int:
        return sum(t.num_pulses for t in self.trains.values())

    def pulses_on_qubit(self, qubit: int) -> int:
        return sum(t.num_pulses for (q, _, _), t in self.trains.items() if q == qubit)


def plan_dd(
    gst: GateSequenceTable,
    assignment: DDAssignment,
    sequence: DDSequence | str = "xy4",
    min_window_ns: Optional[float] = None,
) -> DDPlan:
    """Build the DD plan for a scheduled circuit.

    Args:
        gst: the Gate Sequence Table of the compiled circuit.
        assignment: which qubits receive DD.
        sequence: a :class:`DDSequence` instance or protocol name.
        min_window_ns: minimum idle window to protect; defaults to the
            protocol's own minimum (one XY4 block, one X–X pair, ...).
    """
    if isinstance(sequence, str):
        sequence = get_sequence(sequence)
    threshold = sequence.min_window_ns() if min_window_ns is None else float(min_window_ns)
    plan = DDPlan(assignment=assignment, sequence_name=sequence.name)
    for window in gst.idle_windows(min_duration=threshold):
        if not assignment.enabled(window.qubit):
            continue
        train = sequence.build_train(window.qubit, window.start, window.duration)
        if train is not None:
            plan.add(window, train)
    return plan


def materialize_dd_circuit(
    gst: GateSequenceTable,
    plan: DDPlan,
) -> QuantumCircuit:
    """Produce an explicit circuit with DD pulses and delays inserted.

    The output is the "Quantum Executable with DD" of Figure 11: program gates
    in schedule order, with each protected idle window expanded into labelled
    DD pulses separated by explicit delays, and unprotected idle windows
    expanded into a single delay.  The inserted pulses on any qubit compose to
    the identity, so the circuit's ideal semantics are unchanged (verified in
    the test-suite).
    """
    circuit = QuantumCircuit(gst.circuit.num_qubits, name=f"{gst.circuit.name}+dd")
    events: List[Tuple[float, int, Gate]] = []
    order = 0
    for scheduled in gst.scheduled_gates:
        events.append((scheduled.start, order, scheduled.gate))
        order += 1
    for window in gst.idle_windows():
        train = plan.train_for(window)
        if train is None:
            events.append(
                (
                    window.start,
                    order,
                    Gate(name="delay", qubits=(window.qubit,), duration=window.duration),
                )
            )
            order += 1
            continue
        cursor = 0.0
        for pulse in train.pulses:
            gap = pulse.offset - cursor
            if gap > 1e-9:
                events.append(
                    (
                        window.start + cursor,
                        order,
                        Gate(name="delay", qubits=(window.qubit,), duration=gap),
                    )
                )
                order += 1
            events.append(
                (
                    window.start + pulse.offset,
                    order,
                    Gate(
                        name=pulse.name,
                        qubits=(window.qubit,),
                        duration=pulse.duration,
                        label="dd",
                    ),
                )
            )
            order += 1
            cursor = pulse.end
        tail = window.duration - cursor
        if tail > 1e-9:
            events.append(
                (
                    window.start + cursor,
                    order,
                    Gate(name="delay", qubits=(window.qubit,), duration=tail),
                )
            )
            order += 1
    events.sort(key=lambda item: (item[0], item[1]))
    for _, _, gate in events:
        circuit.append(gate)
    return circuit
