"""Dynamical-decoupling pulse sequences (XY4 and IBMQ-DD).

The paper studies two DD protocols (Section 4.4.3, Figure 12):

* **XY4** — continuous repetition of X-Y-X-Y blocks.  On IBMQ hardware the Y
  pulse is decomposed as SX·RZ·SX (RZ is virtual), so one block costs two X
  pulses and four SX pulses of ~35 ns each plus a 10 ns free-evolution buffer
  after each pulse, about 210-250 ns per block.  Blocks are repeated to fill
  the idle window, so pulse spacing stays constant as the window grows.

* **IBMQ-DD** — the X(π)–X(−π) scheme used in IBM's quantum-volume
  experiments: the two pulses are placed evenly inside the window with delay
  slots of τ/4 around them (Equation 4).  Pulse spacing therefore grows with
  the window, which is why XY4 wins for long idle periods (Figure 16).  For
  application-level runs the paper applies IBMQ-DD "more conservatively" by
  repeating the pair for large windows; the ``repetition_period_ns`` knob
  reproduces that behaviour.

Every sequence knows how to build the *pulse train* for a window: the list of
physical pulses with offsets, the resulting average spacing (what determines
how well low-frequency noise is refocused) and the minimum window it fits in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..circuits.gates import Gate

__all__ = [
    "DDPulse",
    "DDPulseTrain",
    "DDSequence",
    "XY4Sequence",
    "IBMQDDSequence",
    "CPMGSequence",
    "get_sequence",
    "SEQUENCES",
]


@dataclass(frozen=True)
class DDPulse:
    """One physical pulse of a DD train, relative to the window start."""

    name: str
    offset: float
    duration: float

    @property
    def end(self) -> float:
        return self.offset + self.duration


@dataclass(frozen=True)
class DDPulseTrain:
    """The pulses inserted into one idle window on one qubit."""

    sequence_name: str
    qubit: int
    window_start: float
    window_duration: float
    pulses: Tuple[DDPulse, ...]

    @property
    def num_pulses(self) -> int:
        return len(self.pulses)

    @property
    def total_pulse_time(self) -> float:
        return sum(p.duration for p in self.pulses)

    @property
    def average_spacing(self) -> float:
        """Mean gap between consecutive pulse centres (refocusing interval)."""
        if len(self.pulses) <= 1:
            return self.window_duration
        centres = [p.offset + p.duration / 2 for p in self.pulses]
        gaps = [b - a for a, b in zip(centres, centres[1:])]
        return sum(gaps) / len(gaps)

    def gates(self) -> List[Gate]:
        """The pulses as labelled circuit gates (absolute offsets not applied)."""
        return [
            Gate(name=p.name, qubits=(self.qubit,), duration=p.duration, label="dd")
            for p in self.pulses
        ]


class DDSequence:
    """Base class for DD protocols."""

    #: protocol identifier used in result tables
    name: str = "base"

    def __init__(self, sq_gate_ns: float = 35.0, buffer_ns: float = 10.0) -> None:
        self.sq_gate_ns = float(sq_gate_ns)
        self.buffer_ns = float(buffer_ns)

    def min_window_ns(self) -> float:
        """Smallest idle window the protocol can be inserted into."""
        raise NotImplementedError

    def build_train(self, qubit: int, window_start: float, window_duration: float) -> Optional[DDPulseTrain]:
        """Pulse train for a window, or ``None`` when the window is too short."""
        raise NotImplementedError

    # Helpers -----------------------------------------------------------

    def _train(
        self, qubit: int, window_start: float, window_duration: float, pulses: Sequence[DDPulse]
    ) -> DDPulseTrain:
        return DDPulseTrain(
            sequence_name=self.name,
            qubit=qubit,
            window_start=window_start,
            window_duration=window_duration,
            pulses=tuple(pulses),
        )


class XY4Sequence(DDSequence):
    """Repeated X-Y-X-Y blocks filling the idle window."""

    name = "xy4"

    def block_duration(self) -> float:
        """Duration of one X-Y-X-Y block in the IBM basis decomposition."""
        x_cost = self.sq_gate_ns + self.buffer_ns
        y_cost = 2 * self.sq_gate_ns + self.buffer_ns  # Y = SX·RZ·SX, RZ virtual
        return 2 * x_cost + 2 * y_cost

    def min_window_ns(self) -> float:
        return self.block_duration()

    def build_train(self, qubit: int, window_start: float, window_duration: float) -> Optional[DDPulseTrain]:
        block = self.block_duration()
        repetitions = int(window_duration // block)
        if repetitions < 1:
            return None
        # Centre the pulse train inside the window and pack blocks back-to-back.
        slack = window_duration - repetitions * block
        cursor = slack / 2.0
        pulses: List[DDPulse] = []
        for _ in range(repetitions):
            for pulse_name, duration in (
                ("x", self.sq_gate_ns),
                ("y", 2 * self.sq_gate_ns),
                ("x", self.sq_gate_ns),
                ("y", 2 * self.sq_gate_ns),
            ):
                pulses.append(DDPulse(name=pulse_name, offset=cursor, duration=duration))
                cursor += duration + self.buffer_ns
        return self._train(qubit, window_start, window_duration, pulses)


class IBMQDDSequence(DDSequence):
    """IBM's X(π)–X(−π) scheme with evenly spread delay slots."""

    name = "ibmq_dd"

    def __init__(
        self,
        sq_gate_ns: float = 35.0,
        buffer_ns: float = 10.0,
        repetition_period_ns: Optional[float] = 2000.0,
    ) -> None:
        super().__init__(sq_gate_ns=sq_gate_ns, buffer_ns=buffer_ns)
        #: ``None`` reproduces the original protocol (a single X–X pair per
        #: window however long it is); a finite period repeats the pair every
        #: ``repetition_period_ns``, the conservative variant ADAPT uses at the
        #: application level (Section 6.4).
        self.repetition_period_ns = repetition_period_ns

    def pair_duration(self) -> float:
        return 2 * (self.sq_gate_ns + self.buffer_ns)

    def min_window_ns(self) -> float:
        return 2 * self.pair_duration()

    def build_train(self, qubit: int, window_start: float, window_duration: float) -> Optional[DDPulseTrain]:
        if window_duration < self.min_window_ns():
            return None
        if self.repetition_period_ns is None:
            repetitions = 1
        else:
            repetitions = max(1, int(round(window_duration / self.repetition_period_ns)))
            max_reps = int(window_duration // self.min_window_ns())
            repetitions = max(1, min(repetitions, max_reps))
        segment = window_duration / repetitions
        pulses: List[DDPulse] = []
        for rep in range(repetitions):
            base = rep * segment
            # delay τ/4 · X(π) · delay τ/4 · delay τ/4 · X(−π) · delay τ/4
            delay = max(0.0, (segment - 2 * self.sq_gate_ns) / 4.0)
            first = base + delay
            second = base + 3 * delay + self.sq_gate_ns
            pulses.append(DDPulse(name="x", offset=first, duration=self.sq_gate_ns))
            pulses.append(DDPulse(name="x", offset=second, duration=self.sq_gate_ns))
        return self._train(qubit, window_start, window_duration, pulses)


class CPMGSequence(DDSequence):
    """Carr–Purcell–Meiboom–Gill: evenly spaced X pulses at a target spacing.

    Not evaluated in the paper's main results but included as an extension
    point (the paper notes ADAPT generalises to other DD protocols).
    """

    name = "cpmg"

    def __init__(
        self,
        sq_gate_ns: float = 35.0,
        buffer_ns: float = 10.0,
        target_spacing_ns: float = 400.0,
    ) -> None:
        super().__init__(sq_gate_ns=sq_gate_ns, buffer_ns=buffer_ns)
        self.target_spacing_ns = float(target_spacing_ns)

    def min_window_ns(self) -> float:
        return 2 * (self.sq_gate_ns + self.buffer_ns)

    def build_train(self, qubit: int, window_start: float, window_duration: float) -> Optional[DDPulseTrain]:
        if window_duration < self.min_window_ns():
            return None
        num_pulses = max(2, int(window_duration // self.target_spacing_ns))
        if num_pulses % 2:  # even pulse count so the net rotation is identity
            num_pulses += 1
        spacing = window_duration / num_pulses
        if spacing < self.sq_gate_ns + self.buffer_ns:
            num_pulses = max(2, 2 * int(window_duration // (2 * (self.sq_gate_ns + self.buffer_ns))))
            spacing = window_duration / num_pulses
        pulses = [
            DDPulse(
                name="x",
                offset=(i + 0.5) * spacing - self.sq_gate_ns / 2,
                duration=self.sq_gate_ns,
            )
            for i in range(num_pulses)
        ]
        return self._train(qubit, window_start, window_duration, pulses)


SEQUENCES = {
    "xy4": XY4Sequence,
    "ibmq_dd": IBMQDDSequence,
    "cpmg": CPMGSequence,
}


def get_sequence(name: str, **kwargs) -> DDSequence:
    """Instantiate a DD sequence by name (``"xy4"``, ``"ibmq_dd"``, ``"cpmg"``)."""
    try:
        cls = SEQUENCES[name.lower()]
    except KeyError as exc:
        raise KeyError(f"unknown DD sequence '{name}'; known: {sorted(SEQUENCES)}") from exc
    return cls(**kwargs)
