"""Dynamical decoupling: pulse sequences and idle-window insertion."""

from .sequences import (
    CPMGSequence,
    DDPulse,
    DDPulseTrain,
    DDSequence,
    IBMQDDSequence,
    SEQUENCES,
    XY4Sequence,
    get_sequence,
)
from .insertion import DDAssignment, DDPlan, materialize_dd_circuit, plan_dd

__all__ = [
    "CPMGSequence",
    "DDAssignment",
    "DDPlan",
    "DDPulse",
    "DDPulseTrain",
    "DDSequence",
    "IBMQDDSequence",
    "SEQUENCES",
    "XY4Sequence",
    "get_sequence",
    "materialize_dd_circuit",
    "plan_dd",
]
