"""Basis decomposition: rewrite circuits onto the IBMQ basis {rz, sx, x, cx}.

The paper's flow compiles programs "into two-qubit CNOT and single qubit
gates" and ADAPT later inserts DD pulses "in the machine compliant instruction
format" (Section 4.4).  This pass provides that lowering:

* two-qubit gates: ``cz`` -> H-conjugated CNOT, ``swap`` -> three CNOTs;
* single-qubit gates: any unitary is rewritten as
  ``RZ(phi) · SX · RZ(theta) · SX · RZ(lam)`` (the ZSXZSXZ template IBM
  backends use), with the Euler angles extracted numerically from the gate
  matrix.  RZ is virtual (zero duration), so the physical cost is two SX
  pulses — except for gates that already are basis gates (``x``, ``sx``,
  ``rz``), which are left untouched, and known diagonal gates which become a
  single virtual RZ.
"""

from __future__ import annotations

import cmath
import math
from typing import Iterable, List, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate, gate_matrix

__all__ = ["decompose_to_basis", "zyz_angles", "single_qubit_basis_gates"]

_DIAGONAL_ANGLES = {
    "z": math.pi,
    "s": math.pi / 2,
    "sdg": -math.pi / 2,
    "t": math.pi / 4,
    "tdg": -math.pi / 4,
}

_PASSTHROUGH = {"x", "sx", "rz", "cx", "cnot", "measure", "barrier", "delay", "reset", "id", "i"}


def zyz_angles(matrix: np.ndarray) -> Tuple[float, float, float]:
    """Euler angles ``(theta, phi, lam)`` with ``U ~ RZ(phi) RY(theta) RZ(lam)``.

    The decomposition ignores global phase.  Angles are returned in radians.
    """
    u = np.asarray(matrix, dtype=complex)
    if u.shape != (2, 2):
        raise ValueError("zyz_angles expects a single-qubit unitary")
    # Remove global phase so that the decomposition is well conditioned.
    det = np.linalg.det(u)
    u = u / cmath.sqrt(det)
    theta = 2.0 * math.atan2(abs(u[1, 0]), abs(u[0, 0]))
    if abs(u[0, 0]) < 1e-12:
        # theta == pi: only phi - lam matters; put everything in phi.
        phi = 2.0 * cmath.phase(u[1, 0])
        lam = 0.0
    elif abs(u[1, 0]) < 1e-12:
        # theta == 0: only phi + lam matters; put everything in lam.
        phi = 0.0
        lam = 2.0 * cmath.phase(u[1, 1])
    else:
        phi = cmath.phase(u[1, 1]) + cmath.phase(u[1, 0])
        lam = cmath.phase(u[1, 1]) - cmath.phase(u[1, 0])
    return theta, phi, lam


#: Memoized ZSXZSXZ templates keyed by (name, params, label), expressed on
#: qubit 0 and remapped per use — the Euler-angle extraction (determinant,
#: phases) is by far the most expensive part of lowering and is identical for
#: every occurrence of the same gate.
_TEMPLATE_CACHE: dict = {}
_TEMPLATE_CACHE_LIMIT = 4096


def single_qubit_basis_gates(gate: Gate) -> List[Gate]:
    """Rewrite a single-qubit gate as RZ/SX/RZ/SX/RZ on the same qubit."""
    qubit = gate.qubits[0]
    name = gate.name
    if name in ("id", "i"):
        return []
    if name in _PASSTHROUGH:
        return [gate]
    if name in _DIAGONAL_ANGLES:
        return [Gate("rz", (qubit,), (_DIAGONAL_ANGLES[name],), label=gate.label)]
    if name in ("u1", "p"):
        return [Gate("rz", (qubit,), (gate.params[0],), label=gate.label)]
    label = gate.label
    key = (name, gate.params, label)
    template = _TEMPLATE_CACHE.get(key)
    if template is None:
        theta, phi, lam = zyz_angles(gate.matrix())
        # U = RZ(phi) RY(theta) RZ(lam) and RY(theta) = RZ(pi) SX RZ(theta+pi) SX
        # up to global phase, giving the standard ZSXZSXZ template.
        gates = [
            Gate("rz", (0,), (lam,), label=label),
            Gate("sx", (0,), label=label),
            Gate("rz", (0,), (theta + math.pi,), label=label),
            Gate("sx", (0,), label=label),
            Gate("rz", (0,), (phi + math.pi,), label=label),
        ]
        template = tuple(g for g in gates if not _is_trivial_rz(g))
        if len(_TEMPLATE_CACHE) >= _TEMPLATE_CACHE_LIMIT:
            _TEMPLATE_CACHE.clear()
        _TEMPLATE_CACHE[key] = template
    return [g.with_qubits(qubit) for g in template]


def _is_trivial_rz(gate: Gate) -> bool:
    if gate.name != "rz":
        return False
    angle = gate.params[0] % (2 * math.pi)
    return math.isclose(angle, 0.0, abs_tol=1e-12) or math.isclose(
        angle, 2 * math.pi, abs_tol=1e-12
    )


def _decompose_gate(gate: Gate) -> Iterable[Gate]:
    name = gate.name
    if name in ("cx", "cnot"):
        # Re-emitting an identical Gate per pass made re-lowering routed
        # circuits needlessly allocation-heavy; a plain cx passes through.
        if name == "cx" and not gate.params and gate.duration is None:
            yield gate
        else:
            yield Gate("cx", gate.qubits, label=gate.label)
        return
    if name == "cz":
        control, target = gate.qubits
        yield from single_qubit_basis_gates(Gate("h", (target,)))
        yield Gate("cx", (control, target), label=gate.label)
        yield from single_qubit_basis_gates(Gate("h", (target,)))
        return
    if name == "swap":
        a, b = gate.qubits
        yield Gate("cx", (a, b), label=gate.label)
        yield Gate("cx", (b, a), label=gate.label)
        yield Gate("cx", (a, b), label=gate.label)
        return
    if name in ("measure", "barrier", "delay", "reset"):
        yield gate
        return
    if gate.num_qubits == 1:
        yield from single_qubit_basis_gates(gate)
        return
    raise ValueError(f"no decomposition rule for gate '{name}'")


def decompose_to_basis(circuit: QuantumCircuit) -> QuantumCircuit:
    """Lower every gate of a circuit onto the {rz, sx, x, cx} basis."""
    return circuit.map_gates(_decompose_gate)
