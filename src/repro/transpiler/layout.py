"""Noise-adaptive initial layout.

The paper compiles with Qiskit's "noise adaptive" mapping: program qubits are
placed on a connected region of physical qubits chosen for low CNOT and
readout error, with heavily-interacting program qubits placed on adjacent
physical qubits whenever possible.  This pass implements the same idea with a
deterministic greedy algorithm:

1. score every physical edge by its calibrated CNOT error;
2. grow a connected region of ``n`` physical qubits starting from the best
   edge, always adding the frontier qubit whose links into the region are the
   most reliable;
3. place program qubits into the region in decreasing order of interaction
   weight, preferring physical qubits adjacent to already-placed partners.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..circuits.circuit import QuantumCircuit
from ..hardware.backend import Backend

__all__ = ["Layout", "noise_adaptive_layout", "trivial_layout"]


@dataclass(frozen=True)
class Layout:
    """Mapping from program (logical) qubits to physical qubits."""

    logical_to_physical: Tuple[int, ...]

    @property
    def num_logical(self) -> int:
        return len(self.logical_to_physical)

    def physical(self, logical: int) -> int:
        return self.logical_to_physical[logical]

    def as_dict(self) -> Dict[int, int]:
        return {l: p for l, p in enumerate(self.logical_to_physical)}

    def physical_qubits(self) -> Tuple[int, ...]:
        return tuple(self.logical_to_physical)


def trivial_layout(num_logical: int) -> Layout:
    """Identity layout: logical qubit i on physical qubit i."""
    return Layout(tuple(range(num_logical)))


def interaction_graph(circuit: QuantumCircuit) -> nx.Graph:
    """Weighted graph of two-qubit interactions in a program."""
    graph = nx.Graph()
    graph.add_nodes_from(range(circuit.num_qubits))
    for gate in circuit:
        if gate.is_two_qubit:
            a, b = gate.qubits
            if graph.has_edge(a, b):
                graph[a][b]["weight"] += 1
            else:
                graph.add_edge(a, b, weight=1)
    return graph


def noise_adaptive_layout(circuit: QuantumCircuit, backend: Backend) -> Layout:
    """Choose physical qubits for a program on a backend."""
    n_logical = circuit.num_qubits
    if n_logical > backend.num_qubits:
        raise ValueError(
            f"program needs {n_logical} qubits but {backend.name} has only"
            f" {backend.num_qubits}"
        )
    region = _select_region(backend, n_logical)
    return _place_program(circuit, backend, region)


def _edge_error(backend: Backend, a: int, b: int) -> float:
    try:
        return backend.calibration.cnot_error(a, b)
    except KeyError:
        return 1.0


def _readout_error(backend: Backend, qubit: int) -> float:
    cal = backend.calibration.qubit(qubit)
    return (cal.readout_p01 + cal.readout_p10) / 2.0


def _select_region(backend: Backend, size: int) -> List[int]:
    """Grow a connected low-error region of ``size`` physical qubits.

    Adjacency queries ride the backend's cached neighbour sets — no
    networkx graph is built on this path.
    """
    edges = list(backend.edges)
    if size == 1:
        best = min(range(backend.num_qubits), key=lambda q: _readout_error(backend, q))
        return [best]
    if not edges:
        return list(range(size))
    seed_edge = min(edges, key=lambda e: _edge_error(backend, *e))
    region = [seed_edge[0], seed_edge[1]]
    adjacency = backend.adjacency_sets()
    while len(region) < size:
        region_set = set(region)
        frontier = set()
        for q in region:
            frontier.update(adjacency[q] - region_set)
        if not frontier:
            # Disconnected device or exhausted component: add the best leftover.
            leftovers = [q for q in range(backend.num_qubits) if q not in region_set]
            frontier = set(leftovers[: max(1, len(leftovers))])
        def cost(candidate: int) -> float:
            link_errors = [
                _edge_error(backend, candidate, q)
                for q in region
                if q in adjacency[candidate]
            ]
            link_cost = min(link_errors) if link_errors else 0.5
            return link_cost + 0.1 * _readout_error(backend, candidate)
        region.append(min(frontier, key=cost))
    return region


def _place_program(circuit: QuantumCircuit, backend: Backend, region: List[int]) -> Layout:
    """Assign logical qubits to the selected physical region.

    Partner distances are O(1) lookups into the backend's memoized all-pairs
    array (shared with SABRE routing) instead of a fresh BFS per candidate
    pair — the per-pair ``nx.shortest_path_length`` calls inside this loop
    were quadratic-repeated work that dominated layout on 100+ qubit devices.
    Distances are measured on the full coupling graph (routing may leave the
    region), with unreachable pairs penalized at a large finite cost.
    """
    program_graph = interaction_graph(circuit)
    adjacency = backend.adjacency_sets()
    distances = backend.distance_matrix()
    far = float(backend.num_qubits)
    order = sorted(
        range(circuit.num_qubits),
        key=lambda q: -sum(d["weight"] for _, _, d in program_graph.edges(q, data=True)),
    )
    assignment: Dict[int, int] = {}
    used: set = set()
    for logical in order:
        placed_partners = [
            assignment[p] for p in program_graph.neighbors(logical) if p in assignment
        ]
        candidates = [p for p in region if p not in used]
        if not candidates:
            raise ValueError("region smaller than the program")
        def score(physical: int) -> Tuple[int, float]:
            # Placed partners always lie inside the region, so the full-graph
            # adjacency test equals the old region-subgraph edge test.
            neighbors = adjacency[physical]
            adjacent = sum(1 for partner in placed_partners if partner in neighbors)
            avg_dist = 0.0
            if placed_partners:
                lengths = [
                    float(d) if math.isfinite(d) else far
                    for d in (distances[physical, p] for p in placed_partners)
                ]
                avg_dist = sum(lengths) / len(lengths)
            return (-adjacent, avg_dist + 0.05 * _readout_error(backend, physical))
        best = min(candidates, key=score)
        assignment[logical] = best
        used.add(best)
    return Layout(tuple(assignment[l] for l in range(circuit.num_qubits)))
