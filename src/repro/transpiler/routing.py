"""SABRE-style SWAP routing.

Devices do not offer all-to-all connectivity, so CNOTs between non-adjacent
physical qubits require SWAP insertion — the third cause of idling the paper
identifies (SWAPs serialize execution and create long idle periods,
Figure 3).  This pass implements the SABRE heuristic (Li, Ding, Xie —
ASPLOS'19, the routing policy the paper's methodology uses): it maintains a
front layer of unexecuted two-qubit gates and greedily applies the SWAP that
most reduces the summed coupling-graph distance of the front layer, with a
look-ahead term over the following gates.
"""

from __future__ import annotations

import math

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate
from ..hardware.backend import Backend
from .layout import Layout

__all__ = ["RoutedCircuit", "sabre_route"]


@dataclass
class RoutedCircuit:
    """Result of routing: the physical circuit plus layout bookkeeping."""

    circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    num_swaps: int

    def output_qubits(self) -> Tuple[int, ...]:
        """Physical qubit holding each logical qubit at the end of the program."""
        return self.final_layout.physical_qubits()


class _Mapping:
    """Bidirectional logical <-> physical qubit mapping."""

    def __init__(self, layout: Layout, num_physical: int) -> None:
        self.l2p: Dict[int, int] = dict(layout.as_dict())
        self.p2l: Dict[int, int] = {p: l for l, p in self.l2p.items()}
        self.num_physical = num_physical

    def physical(self, logical: int) -> int:
        return self.l2p[logical]

    def swap_physical(self, a: int, b: int) -> None:
        la, lb = self.p2l.get(a), self.p2l.get(b)
        if la is not None:
            self.l2p[la] = b
        if lb is not None:
            self.l2p[lb] = a
        self.p2l.pop(a, None)
        self.p2l.pop(b, None)
        if la is not None:
            self.p2l[b] = la
        if lb is not None:
            self.p2l[a] = lb

    def as_layout(self, num_logical: int) -> Layout:
        return Layout(tuple(self.l2p[l] for l in range(num_logical)))


def sabre_route(
    circuit: QuantumCircuit,
    backend: Backend,
    layout: Layout,
    lookahead: int = 12,
    lookahead_weight: float = 0.5,
    max_iterations: Optional[int] = None,
) -> RoutedCircuit:
    """Route a logical circuit onto the backend's coupling graph.

    Args:
        circuit: logical circuit (any gate set; only two-qubit gates constrain
            routing).
        backend: target backend.
        layout: initial logical-to-physical placement.
        lookahead: number of upcoming two-qubit gates included in the
            extended heuristic set.
        lookahead_weight: weight of the extended set relative to the front
            layer.
        max_iterations: safety bound on SWAP insertions (defaults to a
            generous multiple of the gate count).

    The all-pairs distance matrix is served from the backend's memoized
    array (one graph traversal per topology per process) instead of being
    recomputed on every invocation — at 127 qubits the per-call rebuild used
    to dominate routing time.  Adjacency tests ride the backend's cached
    neighbour sets; no networkx graph is built on this path at all.
    """
    distances = backend.distance_matrix()
    dist_rows = backend.distance_rows()
    adjacency = backend.adjacency_sets()
    mapping = _Mapping(layout, backend.num_qubits)
    routed = QuantumCircuit(backend.num_qubits, name=circuit.name)

    # Terminal measurements are deferred and re-emitted at the final mapping:
    # SWAPs inserted after a logical qubit's last gate may still move its
    # state, so measuring at the *final* physical position is what preserves
    # program semantics (mid-circuit measurement is not supported).
    measured_logical: List[int] = []
    body_gates: List[Gate] = []
    for gate in circuit.gates:
        if gate.is_measurement:
            measured_logical.append(gate.qubits[0])
        else:
            body_gates.append(gate)

    gates = body_gates
    dependencies = _build_dependencies(gates)
    executed = [False] * len(gates)
    remaining_preds = [len(dependencies[i]) for i in range(len(gates))]
    successors: List[List[int]] = [[] for _ in range(len(gates))]
    for idx, preds in enumerate(dependencies):
        for p in preds:
            successors[p].append(idx)

    ready = [i for i, count in enumerate(remaining_preds) if count == 0]
    num_swaps = 0
    limit = max_iterations or (10 * len(gates) + 1000)
    iterations = 0

    l2p = mapping.l2p
    # Per-gate classification, resolved once instead of per scheduling round.
    two_qubit = [g.is_two_qubit for g in gates]
    gate_qubits = [g.qubits for g in gates]

    def is_executable(index: int) -> bool:
        if not two_qubit[index]:
            return True
        qa, qb = gate_qubits[index]
        return l2p[qb] in adjacency[l2p[qa]]

    def emit(index: int) -> None:
        gate = gates[index]
        physical = tuple(l2p[q] for q in gate.qubits)
        routed.append(gate.with_qubits(*physical))
        executed[index] = True
        for succ in successors[index]:
            remaining_preds[succ] -= 1
            if remaining_preds[succ] == 0:
                ready.append(succ)

    while ready:
        iterations += 1
        if iterations > limit:
            raise RuntimeError("routing failed to converge (SWAP limit exceeded)")
        progressed = False
        for index in sorted(ready):
            if is_executable(index):
                ready.remove(index)
                emit(index)
                progressed = True
        if progressed:
            continue

        # Every ready gate is a blocked two-qubit gate: pick a SWAP.
        front = [gates[i] for i in ready if two_qubit[i]]
        for gate in front:
            a, b = (l2p[q] for q in gate.qubits)
            if not math.isfinite(distances[a, b]):
                raise RuntimeError(
                    f"cannot route gate '{gate.name}' on logical qubits"
                    f" {tuple(gate.qubits)}: physical qubits {a} and {b} lie in"
                    f" different components of the {backend.name} coupling"
                    " graph (disconnected coupling map)"
                )
        extended = _extended_set(gates, two_qubit, ready, successors, lookahead)
        best_swap = _choose_swap(
            front, extended, mapping, adjacency, dist_rows, lookahead_weight
        )
        a, b = best_swap
        routed.append(Gate("swap", (a, b), label="routing"))
        mapping.swap_physical(a, b)
        num_swaps += 1

    for logical in measured_logical:
        routed.measure(mapping.physical(logical))

    return RoutedCircuit(
        circuit=routed,
        initial_layout=layout,
        final_layout=mapping.as_layout(circuit.num_qubits),
        num_swaps=num_swaps,
    )


def _build_dependencies(gates: Sequence[Gate]) -> List[List[int]]:
    last_on_qubit: Dict[int, int] = {}
    dependencies: List[List[int]] = []
    for index, gate in enumerate(gates):
        preds = []
        for q in gate.qubits:
            if q in last_on_qubit:
                preds.append(last_on_qubit[q])
            last_on_qubit[q] = index
        dependencies.append(sorted(set(preds)))
    return dependencies


def _extended_set(
    gates: Sequence[Gate],
    two_qubit: Sequence[bool],
    ready: Sequence[int],
    successors: Sequence[Sequence[int]],
    lookahead: int,
) -> List[Gate]:
    """Upcoming two-qubit gates reachable from the front layer."""
    extended: List[Gate] = []
    frontier = list(ready)
    seen = set(ready)
    while frontier and len(extended) < lookahead:
        nxt: List[int] = []
        for index in frontier:
            for succ in successors[index]:
                if succ in seen:
                    continue
                seen.add(succ)
                nxt.append(succ)
                if two_qubit[succ]:
                    extended.append(gates[succ])
                    if len(extended) >= lookahead:
                        break
            if len(extended) >= lookahead:
                break
        frontier = nxt
    return extended


def _choose_swap(
    front: Sequence[Gate],
    extended: Sequence[Gate],
    mapping: _Mapping,
    adjacency: Sequence[FrozenSet[int]],
    dist_rows: Sequence[Sequence[float]],
    lookahead_weight: float,
) -> Tuple[int, int]:
    l2p = mapping.l2p
    candidates = set()
    for gate in front:
        for logical in gate.qubits:
            physical = l2p[logical]
            for neighbor in adjacency[physical]:
                candidates.add(
                    (physical, neighbor) if physical < neighbor else (neighbor, physical)
                )
    if not candidates:
        raise RuntimeError("no SWAP candidates available; is the device connected?")

    # Scoring is allocation-free: the physical endpoints of every heuristic
    # gate are resolved once, and each candidate SWAP remaps only its own two
    # qubits — no trial-mapping dicts are copied per candidate.  Unreachable
    # look-ahead pairs get a large *finite* penalty so the front-layer term
    # still discriminates between SWAP candidates (truly unroutable front
    # gates fail fast in sabre_route).
    far = float(len(l2p) + 10)
    front_pairs = [(l2p[g.qubits[0]], l2p[g.qubits[1]]) for g in front]
    ext_pairs = [(l2p[g.qubits[0]], l2p[g.qubits[1]]) for g in extended]
    front_norm = max(1, len(front_pairs))
    ext_norm = len(ext_pairs)

    def cost_after(swap: Tuple[int, int]) -> float:
        a, b = swap

        def pair_cost(pairs: Sequence[Tuple[int, int]]) -> float:
            total = 0.0
            for pa, pb in pairs:
                if pa == a:
                    pa = b
                elif pa == b:
                    pa = a
                if pb == a:
                    pb = b
                elif pb == b:
                    pb = a
                value = dist_rows[pa][pb]
                total += value if math.isfinite(value) else far
            return total

        cost = pair_cost(front_pairs) / front_norm
        if ext_norm:
            cost += lookahead_weight * (pair_cost(ext_pairs) / ext_norm)
        return cost

    return min(sorted(candidates), key=cost_after)
