"""SABRE-style SWAP routing.

Devices do not offer all-to-all connectivity, so CNOTs between non-adjacent
physical qubits require SWAP insertion — the third cause of idling the paper
identifies (SWAPs serialize execution and create long idle periods,
Figure 3).  This pass implements the SABRE heuristic (Li, Ding, Xie —
ASPLOS'19, the routing policy the paper's methodology uses): it maintains a
front layer of unexecuted two-qubit gates and greedily applies the SWAP that
most reduces the summed coupling-graph distance of the front layer, with a
look-ahead term over the following gates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate
from ..hardware.backend import Backend
from .layout import Layout

__all__ = ["RoutedCircuit", "sabre_route"]


@dataclass
class RoutedCircuit:
    """Result of routing: the physical circuit plus layout bookkeeping."""

    circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    num_swaps: int

    def output_qubits(self) -> Tuple[int, ...]:
        """Physical qubit holding each logical qubit at the end of the program."""
        return self.final_layout.physical_qubits()


class _Mapping:
    """Bidirectional logical <-> physical qubit mapping."""

    def __init__(self, layout: Layout, num_physical: int) -> None:
        self.l2p: Dict[int, int] = dict(layout.as_dict())
        self.p2l: Dict[int, int] = {p: l for l, p in self.l2p.items()}
        self.num_physical = num_physical

    def physical(self, logical: int) -> int:
        return self.l2p[logical]

    def swap_physical(self, a: int, b: int) -> None:
        la, lb = self.p2l.get(a), self.p2l.get(b)
        if la is not None:
            self.l2p[la] = b
        if lb is not None:
            self.l2p[lb] = a
        self.p2l.pop(a, None)
        self.p2l.pop(b, None)
        if la is not None:
            self.p2l[b] = la
        if lb is not None:
            self.p2l[a] = lb

    def as_layout(self, num_logical: int) -> Layout:
        return Layout(tuple(self.l2p[l] for l in range(num_logical)))


def _distance_matrix(backend: Backend) -> Dict[Tuple[int, int], int]:
    graph = backend.coupling_graph()
    lengths = dict(nx.all_pairs_shortest_path_length(graph))
    return {
        (a, b): lengths[a][b]
        for a in lengths
        for b in lengths[a]
    }


def sabre_route(
    circuit: QuantumCircuit,
    backend: Backend,
    layout: Layout,
    lookahead: int = 12,
    lookahead_weight: float = 0.5,
    max_iterations: Optional[int] = None,
) -> RoutedCircuit:
    """Route a logical circuit onto the backend's coupling graph.

    Args:
        circuit: logical circuit (any gate set; only two-qubit gates constrain
            routing).
        backend: target backend.
        layout: initial logical-to-physical placement.
        lookahead: number of upcoming two-qubit gates included in the
            extended heuristic set.
        lookahead_weight: weight of the extended set relative to the front
            layer.
        max_iterations: safety bound on SWAP insertions (defaults to a
            generous multiple of the gate count).
    """
    distances = _distance_matrix(backend)
    graph = backend.coupling_graph()
    mapping = _Mapping(layout, backend.num_qubits)
    routed = QuantumCircuit(backend.num_qubits, name=circuit.name)

    # Terminal measurements are deferred and re-emitted at the final mapping:
    # SWAPs inserted after a logical qubit's last gate may still move its
    # state, so measuring at the *final* physical position is what preserves
    # program semantics (mid-circuit measurement is not supported).
    measured_logical: List[int] = []
    body_gates: List[Gate] = []
    for gate in circuit.gates:
        if gate.is_measurement:
            measured_logical.append(gate.qubits[0])
        else:
            body_gates.append(gate)

    gates = body_gates
    dependencies = _build_dependencies(gates)
    executed = [False] * len(gates)
    remaining_preds = [len(dependencies[i]) for i in range(len(gates))]
    successors: List[List[int]] = [[] for _ in range(len(gates))]
    for idx, preds in enumerate(dependencies):
        for p in preds:
            successors[p].append(idx)

    ready = [i for i, count in enumerate(remaining_preds) if count == 0]
    num_swaps = 0
    limit = max_iterations or (10 * len(gates) + 1000)
    iterations = 0

    def is_executable(index: int) -> bool:
        gate = gates[index]
        if not gate.is_two_qubit:
            return True
        a, b = (mapping.physical(q) for q in gate.qubits)
        return graph.has_edge(a, b)

    def emit(index: int) -> None:
        gate = gates[index]
        physical = tuple(mapping.physical(q) for q in gate.qubits)
        routed.append(gate.with_qubits(*physical))
        executed[index] = True
        for succ in successors[index]:
            remaining_preds[succ] -= 1
            if remaining_preds[succ] == 0:
                ready.append(succ)

    while ready:
        iterations += 1
        if iterations > limit:
            raise RuntimeError("routing failed to converge (SWAP limit exceeded)")
        progressed = False
        for index in sorted(ready):
            if is_executable(index):
                ready.remove(index)
                emit(index)
                progressed = True
        if progressed:
            continue

        # Every ready gate is a blocked two-qubit gate: pick a SWAP.
        front = [gates[i] for i in ready if gates[i].is_two_qubit]
        extended = _extended_set(gates, ready, successors, remaining_preds, lookahead)
        best_swap = _choose_swap(
            front, extended, mapping, graph, distances, lookahead_weight
        )
        a, b = best_swap
        routed.append(Gate("swap", (a, b), label="routing"))
        mapping.swap_physical(a, b)
        num_swaps += 1

    for logical in measured_logical:
        routed.measure(mapping.physical(logical))

    return RoutedCircuit(
        circuit=routed,
        initial_layout=layout,
        final_layout=mapping.as_layout(circuit.num_qubits),
        num_swaps=num_swaps,
    )


def _build_dependencies(gates: Sequence[Gate]) -> List[List[int]]:
    last_on_qubit: Dict[int, int] = {}
    dependencies: List[List[int]] = []
    for index, gate in enumerate(gates):
        preds = []
        for q in gate.qubits:
            if q in last_on_qubit:
                preds.append(last_on_qubit[q])
            last_on_qubit[q] = index
        dependencies.append(sorted(set(preds)))
    return dependencies


def _extended_set(
    gates: Sequence[Gate],
    ready: Sequence[int],
    successors: Sequence[Sequence[int]],
    remaining_preds: Sequence[int],
    lookahead: int,
) -> List[Gate]:
    """Upcoming two-qubit gates reachable from the front layer."""
    extended: List[Gate] = []
    frontier = list(ready)
    seen = set(ready)
    while frontier and len(extended) < lookahead:
        nxt: List[int] = []
        for index in frontier:
            for succ in successors[index]:
                if succ in seen:
                    continue
                seen.add(succ)
                nxt.append(succ)
                if gates[succ].is_two_qubit:
                    extended.append(gates[succ])
                    if len(extended) >= lookahead:
                        break
            if len(extended) >= lookahead:
                break
        frontier = nxt
    return extended


def _choose_swap(
    front: Sequence[Gate],
    extended: Sequence[Gate],
    mapping: _Mapping,
    graph: nx.Graph,
    distances: Dict[Tuple[int, int], int],
    lookahead_weight: float,
) -> Tuple[int, int]:
    candidates = set()
    for gate in front:
        for logical in gate.qubits:
            physical = mapping.physical(logical)
            for neighbor in graph.neighbors(physical):
                candidates.add(tuple(sorted((physical, neighbor))))
    if not candidates:
        raise RuntimeError("no SWAP candidates available; is the device connected?")

    def cost_after(swap: Tuple[int, int]) -> float:
        trial = {**mapping.l2p}
        a, b = swap
        inverse = {p: l for l, p in trial.items()}
        la, lb = inverse.get(a), inverse.get(b)
        if la is not None:
            trial[la] = b
        if lb is not None:
            trial[lb] = a

        def dist(gate: Gate) -> float:
            pa, pb = (trial[q] for q in gate.qubits)
            return distances.get((pa, pb), len(trial) + 10)

        front_cost = sum(dist(g) for g in front) / max(1, len(front))
        ext_cost = (
            sum(dist(g) for g in extended) / len(extended) if extended else 0.0
        )
        return front_cost + lookahead_weight * ext_cost

    return min(sorted(candidates), key=cost_after)
