"""Transpiler: basis decomposition, noise-adaptive layout, SABRE routing, cleanup."""

from .decompose import decompose_to_basis, single_qubit_basis_gates, zyz_angles
from .layout import Layout, noise_adaptive_layout, trivial_layout
from .optimization import cancel_redundant_gates, merge_rotations, optimize_circuit
from .routing import RoutedCircuit, sabre_route
from .transpile import CompiledProgram, transpile

__all__ = [
    "CompiledProgram",
    "Layout",
    "RoutedCircuit",
    "cancel_redundant_gates",
    "decompose_to_basis",
    "merge_rotations",
    "noise_adaptive_layout",
    "optimize_circuit",
    "sabre_route",
    "single_qubit_basis_gates",
    "transpile",
    "trivial_layout",
    "zyz_angles",
]
