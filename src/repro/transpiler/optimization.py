"""Peephole optimizations: redundant-gate elimination and rotation merging.

The paper notes that during decomposition and mapping "redundant gates are
eliminated".  This pass performs the standard cleanups on the basis gate set:

* cancel adjacent self-inverse pairs (``cx·cx``, ``x·x``, ``h·h``, ...);
* merge consecutive ``rz`` rotations on the same qubit and drop zero-angle
  rotations;
* drop explicit identity gates.

The pass is iterated until a fixed point is reached.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate

__all__ = ["cancel_redundant_gates", "merge_rotations", "optimize_circuit"]

_SELF_INVERSE = {"x", "y", "z", "h", "cx", "cnot", "cz", "swap", "id", "i"}
_TWO_PI = 2 * math.pi


def _is_zero_rotation(gate: Gate) -> bool:
    if gate.name not in ("rz", "rx", "ry", "u1", "p"):
        return False
    angle = gate.params[0] % _TWO_PI
    return math.isclose(angle, 0.0, abs_tol=1e-10) or math.isclose(
        angle, _TWO_PI, abs_tol=1e-10
    )


def merge_rotations(circuit: QuantumCircuit) -> QuantumCircuit:
    """Merge runs of same-axis rotations on the same qubit."""
    merged: List[Gate] = []
    pending: dict = {}

    def flush(qubit: Optional[int] = None) -> None:
        keys = [qubit] if qubit is not None else list(pending.keys())
        for key in keys:
            entry = pending.pop(key, None)
            if entry is None:
                continue
            name, angle, label, original = entry
            canonical = angle % _TWO_PI
            # An unmerged rotation whose angle is already canonical can be
            # re-emitted as the original object (identical fields, no
            # allocation) — the common case on already-optimized circuits.
            if (
                original is not None
                and original.duration is None
                and canonical == original.params[0]
            ):
                gate = original
            else:
                gate = Gate(name, (key,), (canonical,), label=label)
            if not _is_zero_rotation(gate):
                merged.append(gate)

    for gate in circuit:
        if gate.name in ("rz", "rx", "ry") and len(gate.qubits) == 1:
            qubit = gate.qubits[0]
            entry = pending.get(qubit)
            if entry is not None and entry[0] == gate.name:
                pending[qubit] = (gate.name, entry[1] + gate.params[0], entry[2], None)
            else:
                flush(qubit)
                pending[qubit] = (gate.name, gate.params[0], gate.label, gate)
            continue
        for q in gate.qubits:
            flush(q)
        merged.append(gate)
    flush()
    return QuantumCircuit._trusted(circuit.num_qubits, circuit.name, merged)


def cancel_redundant_gates(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove adjacent self-inverse pairs and identity gates."""
    result: List[Gate] = []
    last_on_qubit: dict = {}
    for gate in circuit:
        if gate.name in ("id", "i"):
            continue
        if _is_zero_rotation(gate):
            continue
        if gate.name in _SELF_INVERSE and not gate.is_barrier:
            previous_index = None
            indices = [last_on_qubit.get(q) for q in gate.qubits]
            if all(i is not None for i in indices) and len(set(indices)) == 1:
                candidate = result[indices[0]]
                if (
                    candidate is not None
                    and candidate.name == gate.name
                    and candidate.qubits == gate.qubits
                ):
                    previous_index = indices[0]
            if previous_index is not None:
                result[previous_index] = None  # type: ignore[call-overload]
                for q in gate.qubits:
                    last_on_qubit.pop(q, None)
                continue
        result.append(gate)
        for q in gate.qubits:
            last_on_qubit[q] = len(result) - 1
    return QuantumCircuit._trusted(
        circuit.num_qubits,
        circuit.name,
        [gate for gate in result if gate is not None],
    )


def optimize_circuit(circuit: QuantumCircuit, max_passes: int = 8) -> QuantumCircuit:
    """Iterate rotation merging and redundant-gate cancellation to a fixed point."""
    current = circuit
    for _ in range(max_passes):
        candidate = cancel_redundant_gates(merge_rotations(current))
        if candidate.gates == current.gates:
            return candidate
        current = candidate
    return current
