"""Top-level transpilation pipeline: decompose -> layout -> route -> optimize.

Mirrors the methodology of Section 5.1 (Qiskit with noise-adaptive mapping,
SABRE routing and optimization level 3): the output is a
:class:`CompiledProgram` on physical device qubits, in the machine basis, with
the bookkeeping ADAPT needs (the logical-to-physical layout at measurement
time, the scheduled Gate Sequence Table and SWAP statistics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate
from ..core.gst import GateSequenceTable
from ..hardware.backend import Backend
from .decompose import decompose_to_basis
from .layout import Layout, noise_adaptive_layout, trivial_layout
from .optimization import optimize_circuit
from .routing import RoutedCircuit, sabre_route

__all__ = ["CompiledProgram", "transpile"]


@dataclass
class CompiledProgram:
    """A program compiled for a specific backend."""

    logical_circuit: QuantumCircuit
    physical_circuit: QuantumCircuit
    backend: Backend
    initial_layout: Layout
    final_layout: Layout
    num_swaps: int
    _gst: Optional[GateSequenceTable] = field(default=None, repr=False)

    @property
    def num_logical_qubits(self) -> int:
        return self.logical_circuit.num_qubits

    @property
    def output_qubits(self) -> Tuple[int, ...]:
        """Physical qubit holding each logical qubit at measurement time."""
        return self.final_layout.physical_qubits()

    @property
    def program_qubits(self) -> Tuple[int, ...]:
        """All physical qubits that carry program state at some point."""
        return tuple(sorted(self.physical_circuit.qubits_used()))

    @property
    def gst(self) -> GateSequenceTable:
        """The scheduled Gate Sequence Table (built lazily and cached)."""
        if self._gst is None:
            self._gst = self.backend.schedule(self.physical_circuit)
        return self._gst

    def schedule(self, method: str = "alap") -> GateSequenceTable:
        return self.backend.schedule(self.physical_circuit, method=method)

    # Summary statistics used by the Table 4 harness ------------------------

    def gate_count(self) -> int:
        return self.physical_circuit.num_gates - self.physical_circuit.num_measurements

    def depth(self) -> int:
        return self.physical_circuit.depth()

    def average_idle_time_us(self) -> float:
        return self.gst.average_idle_time() / 1000.0

    def latency_us(self) -> float:
        return self.gst.total_duration / 1000.0


def _expand_routing_swaps(circuit: QuantumCircuit) -> QuantumCircuit:
    """Lower routing SWAPs to CNOT triples.

    The routed circuit is the already-lowered program plus inserted ``swap``
    gates, so this targeted expansion produces exactly what a second full
    ``decompose_to_basis`` pass used to — without re-walking every gate
    through the decomposition rules.
    """
    lowered: list = []
    for gate in circuit.gates:
        if gate.name == "swap":
            a, b = gate.qubits
            label = gate.label
            lowered.append(Gate("cx", (a, b), label=label))
            lowered.append(Gate("cx", (b, a), label=label))
            lowered.append(Gate("cx", (a, b), label=label))
        else:
            lowered.append(gate)
    return QuantumCircuit._trusted(circuit.num_qubits, circuit.name, lowered)


def transpile(
    circuit: QuantumCircuit,
    backend: Backend,
    layout: Optional[Layout] = None,
    optimize: bool = True,
    use_noise_adaptive_layout: bool = True,
) -> CompiledProgram:
    """Compile a logical circuit for a backend.

    Args:
        circuit: logical program (measurements included).
        backend: target device + calibration.
        layout: optional explicit initial layout; by default the
            noise-adaptive placement is used (or the trivial layout when
            ``use_noise_adaptive_layout`` is disabled).
        optimize: run redundant-gate elimination after lowering.
    """
    lowered = decompose_to_basis(circuit)
    if optimize:
        lowered = optimize_circuit(lowered)

    if layout is None:
        if use_noise_adaptive_layout:
            layout = noise_adaptive_layout(lowered, backend)
        else:
            layout = trivial_layout(circuit.num_qubits)

    routed: RoutedCircuit = sabre_route(lowered, backend, layout)
    physical = _expand_routing_swaps(routed.circuit)
    if optimize:
        physical = optimize_circuit(physical)
    physical.name = circuit.name

    return CompiledProgram(
        logical_circuit=circuit,
        physical_circuit=physical,
        backend=backend,
        initial_layout=routed.initial_layout,
        final_layout=routed.final_layout,
        num_swaps=routed.num_swaps,
    )
