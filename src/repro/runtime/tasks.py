"""The task-kind registry: experiment drivers as schedulable, keyable units.

Each registered kind binds three things:

* ``axes`` — which sweep axes it consumes (``device`` / ``cycle`` /
  ``workload`` / ``seed``), used by :func:`repro.runtime.spec.expand_sweep`;
* ``defaults`` — the kind's budget knobs.  Defaults are merged into the
  parameters *before* key resolution, so an explicit ``shots=4096`` and a
  defaulted one produce the same key;
* ``execute`` — the driver call.  Drivers receive the store, so their own
  fine-grained (content-keyed) records are populated alongside the
  orchestrator's task records.

Task keys are :func:`repro.store.keys.task_key` over the merged parameters
plus the **calibration content fingerprint** of every ``(device, cycle)``
the task touches — the store invalidates itself when the calibration model
changes.  Fingerprints are memoized per process; resolving keys for a
thousand-task sweep costs milliseconds, which is what makes warm re-runs of
whole sweeps near-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..hardware.backend import Backend
from ..hardware.calibration import generate_calibration
from ..hardware.devices import get_device
from ..store.keys import calibration_fingerprint, task_key
from .spec import TaskSpec

__all__ = [
    "TaskKind",
    "available_task_kinds",
    "axes_of",
    "register_task_kind",
    "resolve_task_key",
    "run_task",
    "summary_task",
]

Arrays = Dict[str, object]
ExecuteFn = Callable[[Dict[str, object], Optional[object]], Tuple[dict, Arrays]]


@dataclass(frozen=True)
class TaskKind:
    """One registered experiment-task kind."""

    name: str
    axes: Tuple[str, ...]
    defaults: Dict[str, object]
    execute: ExecuteFn
    #: extra key ingredients beyond merged params (calibration fingerprints)
    key_extras: Callable[[Dict[str, object]], Dict[str, object]]


_REGISTRY: Dict[str, TaskKind] = {}

#: Parameters that change *how* a task runs but never *what* it computes
#: (worker fan-out and batching are result-invariant by the seed protocol).
_NON_KEY_PARAMS = ("n_workers", "use_batch")


def register_task_kind(kind: TaskKind) -> TaskKind:
    """Register a task kind (the built-ins below use this too).

    Custom kinds slot into sweeps and the CLI exactly like the built-ins;
    their ``key_extras`` must fold in every result-determining ingredient
    that is not already in the parameters (calibration fingerprints for any
    backend touched).
    """
    _REGISTRY[kind.name] = kind
    return kind


_register = register_task_kind


def available_task_kinds() -> List[str]:
    return sorted(_REGISTRY)


def _get_kind(name: str) -> TaskKind:
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown task kind '{name}'; registered kinds: {available_task_kinds()}"
        ) from exc


def axes_of(kind: str) -> Tuple[str, ...]:
    return _get_kind(kind).axes


#: Parameter name each sweep axis supplies ("cycle" is optional — every kind
#: with a cycle axis carries ``cycle: 0`` in its defaults, so an omitted
#: cycle and an explicit cycle=0 resolve to the same key).
_AXIS_PARAMS = {"device": "device", "workload": "benchmark", "seed": "seed"}


def required_params(kind: str) -> Tuple[str, ...]:
    """Parameters a task of this kind cannot run without (beyond defaults)."""
    return tuple(
        _AXIS_PARAMS[axis] for axis in _get_kind(kind).axes if axis in _AXIS_PARAMS
    )


def merged_params(kind: str, params: Dict[str, object]) -> Dict[str, object]:
    merged = dict(_get_kind(kind).defaults)
    merged.update(params)
    return merged


def resolve_task_key(kind: str, params: Dict[str, object]) -> str:
    """The content-addressed store key of one task."""
    spec = _get_kind(kind)
    merged = merged_params(kind, params)
    keyed = {k: v for k, v in merged.items() if k not in _NON_KEY_PARAMS}
    keyed.update(spec.key_extras(merged))
    return task_key(kind, keyed)


def run_task(kind: str, params: Dict[str, object], store=None) -> Tuple[dict, Arrays]:
    """Execute one task and return its ``(meta, arrays)`` record payload."""
    spec = _get_kind(kind)
    return spec.execute(merged_params(kind, params), store)


# ---------------------------------------------------------------------------
# Calibration fingerprint memo
# ---------------------------------------------------------------------------

_FP_CACHE: Dict[Tuple[str, int], str] = {}


def _calibration_fp(device_name: str, cycle: int) -> str:
    key = (str(device_name), int(cycle))
    if key not in _FP_CACHE:
        device = get_device(key[0])
        _FP_CACHE[key] = calibration_fingerprint(
            generate_calibration(device, cycle=key[1])
        )
    return _FP_CACHE[key]


def _backend(params: Dict[str, object]) -> Backend:
    return Backend.from_name(str(params["device"]), cycle=int(params.get("cycle", 0)))


def _cal_extras(params: Dict[str, object]) -> Dict[str, object]:
    return {
        "calibration": _calibration_fp(
            str(params["device"]), int(params.get("cycle", 0))
        )
    }


# ---------------------------------------------------------------------------
# Kind implementations
# ---------------------------------------------------------------------------


def _execute_figure1(params, store):
    from ..analysis.motivation import figure1_motivation_study

    values = figure1_motivation_study(
        backend=_backend(params),
        shots=int(params["shots"]),
        seed=int(params["seed"]),
        store=store,
    )
    return {"kind": "figure1", "values": values}, {}


_register(
    TaskKind(
        name="figure1",
        axes=("device", "cycle", "seed"),
        defaults={"cycle": 0, "shots": 4096},
        execute=_execute_figure1,
        key_extras=_cal_extras,
    )
)


def _execute_table1(params, store):
    from ..analysis.motivation import table1_idle_fractions
    from ..store.records import encode_rows

    rows = table1_idle_fractions(
        device_name=str(params["device"]),
        benchmarks=tuple(params["benchmarks"]),
        shots=int(params["shots"]),
        seed=int(params["seed"]),
        store=store,
    )
    return encode_rows("table1", rows)


_register(
    TaskKind(
        name="table1",
        axes=("device", "seed"),
        defaults={"benchmarks": ["QFT-5", "QAOA-5", "ADDER-4"], "shots": 4096},
        execute=_execute_table1,
        key_extras=lambda p: {"calibration": _calibration_fp(str(p["device"]), 0)},
    )
)


def _execute_swap_idle(params, store):
    from dataclasses import asdict

    from ..analysis.motivation import figure3_swap_idle_study
    from ..store.records import encode_rows

    records = figure3_swap_idle_study(
        sizes=tuple(int(s) for s in params["sizes"]),
        device_name=str(params["device"]),
        store=store,
    )
    return encode_rows("swap_idle", [asdict(r) for r in records])


_register(
    TaskKind(
        name="swap_idle",
        axes=("device",),
        defaults={"sizes": [4, 5, 6, 7, 8]},
        execute=_execute_swap_idle,
        key_extras=lambda p: {"calibration": _calibration_fp(str(p["device"]), 0)},
    )
)


def _execute_idling_study(params, store):
    from ..analysis.characterization import DEFAULT_THETAS, single_qubit_idling_study
    from ..store.records import encode_rows

    link = params.get("active_link")
    rows = single_qubit_idling_study(
        backend=_backend(params),
        idle_qubit=int(params["idle_qubit"]),
        active_link=None if link is None else tuple(int(q) for q in link),
        idle_ns=float(params["idle_ns"]),
        thetas=tuple(params.get("thetas") or DEFAULT_THETAS),
        dd_sequence=str(params["dd_sequence"]),
        shots=int(params["shots"]),
        seed=int(params["seed"]),
        store=store,
    )
    return encode_rows("idling_study", rows)


_register(
    TaskKind(
        name="idling_study",
        axes=("device", "cycle", "seed"),
        defaults={
            "cycle": 0,
            "idle_qubit": 0,
            "active_link": None,
            "idle_ns": 1200.0,
            "thetas": None,
            "dd_sequence": "xy4",
            "shots": 2048,
        },
        execute=_execute_idling_study,
        key_extras=_cal_extras,
    )
)


def _execute_characterization(params, store):
    from dataclasses import asdict

    from ..analysis.characterization import DEFAULT_THETAS, full_device_characterization
    from ..store.records import encode_rows

    records = full_device_characterization(
        backend=_backend(params),
        idle_ns=float(params["idle_ns"]),
        thetas=tuple(params.get("thetas") or DEFAULT_THETAS),
        dd_sequence=str(params["dd_sequence"]),
        shots=int(params["shots"]),
        max_combinations=params.get("max_combinations"),
        seed=int(params["seed"]),
        store=store,
    )
    return encode_rows("characterization", [asdict(r) for r in records])


_register(
    TaskKind(
        name="characterization",
        axes=("device", "cycle", "seed"),
        defaults={
            "cycle": 0,
            "idle_ns": 8000.0,
            "thetas": None,
            "dd_sequence": "xy4",
            "shots": 1024,
            "max_combinations": None,
        },
        execute=_execute_characterization,
        key_extras=_cal_extras,
    )
)


def _execute_drift(params, store):
    from ..analysis.characterization import DEFAULT_THETAS, calibration_drift_study
    from ..store.records import jsonable

    results = calibration_drift_study(
        device_name=str(params["device"]),
        idle_qubit=int(params["idle_qubit"]),
        link=tuple(int(q) for q in params["link"]),
        cycles=tuple(int(c) for c in params["cycles"]),
        idle_ns=float(params["idle_ns"]),
        thetas=tuple(params.get("thetas") or DEFAULT_THETAS),
        dd_sequence=str(params["dd_sequence"]),
        shots=int(params["shots"]),
        seed=int(params["seed"]),
        store=store,
    )
    meta = {
        "kind": "drift",
        "cycles": {str(cycle): jsonable(rows) for cycle, rows in results.items()},
    }
    return meta, {}


_register(
    TaskKind(
        name="drift",
        axes=("device", "seed"),
        defaults={
            "cycles": [0, 1],
            "idle_qubit": 0,
            "link": [1, 2],
            "idle_ns": 2400.0,
            "thetas": None,
            "dd_sequence": "xy4",
            "shots": 2048,
        },
        execute=_execute_drift,
        key_extras=lambda p: {
            "calibrations": [
                _calibration_fp(str(p["device"]), int(c)) for c in p["cycles"]
            ]
        },
    )
)


def _execute_pulse_type(params, store):
    from ..analysis.characterization import pulse_type_study
    from ..store.records import encode_rows

    link = params.get("active_link")
    rows = pulse_type_study(
        backend=_backend(params),
        idle_qubit=int(params["idle_qubit"]),
        active_link=None if link is None else tuple(int(q) for q in link),
        idle_times_ns=tuple(float(t) for t in params["idle_times_ns"]),
        theta=float(params["theta"]),
        shots=int(params["shots"]),
        seed=int(params["seed"]),
        max_probe_qubits=params.get("max_probe_qubits"),
        store=store,
    )
    return encode_rows("pulse_type", rows)


_register(
    TaskKind(
        name="pulse_type",
        axes=("device", "cycle", "seed"),
        defaults={
            "cycle": 0,
            "idle_qubit": 0,
            "active_link": None,
            "idle_times_ns": [1000.0, 2000.0, 4000.0, 8000.0, 16000.0],
            "theta": 1.5707963267948966,
            "shots": 2048,
            "max_probe_qubits": 8,
        },
        execute=_execute_pulse_type,
        key_extras=_cal_extras,
    )
)


def _execute_policy_comparison(params, store):
    from ..analysis.evaluation_runs import EvaluationConfig, run_policy_comparison
    from ..store.records import encode_evaluation

    config = EvaluationConfig(
        dd_sequence=str(params["dd_sequence"]),
        shots=int(params["shots"]),
        decoy_shots=int(params["decoy_shots"]),
        trajectories=int(params["trajectories"]),
        include_runtime_best=bool(params["include_runtime_best"]),
        runtime_best_max_evaluations=int(params["runtime_best_max_evaluations"]),
        seed=int(params["seed"]),
        adapt_decoy_kind=str(params["adapt_decoy_kind"]),
        adapt_group_size=int(params["adapt_group_size"]),
        engine=str(params["engine"]),
        final_engine=str(params["final_engine"]),
        use_batch=bool(params.get("use_batch", True)),
        n_workers=1,  # the orchestrator owns the fan-out level
    )
    evaluation = run_policy_comparison(
        str(params["benchmark"]), _backend(params), config, store=store
    )
    meta, arrays = encode_evaluation(evaluation)
    meta["task"] = {
        "benchmark": str(params["benchmark"]),
        "device": str(params["device"]),
        "cycle": int(params.get("cycle", 0)),
        "seed": int(params["seed"]),
    }
    return meta, arrays


_register(
    TaskKind(
        name="policy_comparison",
        axes=("device", "cycle", "workload", "seed"),
        defaults={
            "cycle": 0,
            "dd_sequence": "xy4",
            "shots": 4096,
            "decoy_shots": 2048,
            "trajectories": 100,
            "include_runtime_best": True,
            "runtime_best_max_evaluations": 32,
            "adapt_decoy_kind": "sdc",
            "adapt_group_size": 4,
            "engine": "auto",
            "final_engine": "auto_dense",
        },
        execute=_execute_policy_comparison,
        key_extras=_cal_extras,
    )
)


def _execute_hardware_scaling(params, store):
    from dataclasses import asdict

    from ..analysis.scaling import hardware_scaling_study
    from ..store.records import encode_rows

    # Route through the study driver so the fine-grained per-device record
    # (one read-through key per point) is shared between CLI sweeps and
    # direct hardware_scaling_study(store=...) API calls.
    engine = params.get("engine")
    (record,) = hardware_scaling_study(
        device_names=(str(params["device"]),),
        benchmark=str(params["benchmark"]),
        cycle=int(params.get("cycle", 0)),
        shots=int(params["shots"]),
        trajectories=int(params["trajectories"]),
        seed=int(params["seed"]),
        engine=None if engine is None else str(engine),
        store=store,
    )
    return encode_rows("hardware_scaling", [asdict(record)])


_register(
    TaskKind(
        name="hardware_scaling",
        axes=("device", "cycle", "workload", "seed"),
        defaults={
            "cycle": 0,
            "shots": 2048,
            "trajectories": 60,
            # None = per-workload policy: mirror workloads ride the
            # stabilizer path, everything else stays a measurement context
            # on auto_dense (see analysis.scaling.hardware_scaling_point).
            "engine": None,
        },
        execute=_execute_hardware_scaling,
        key_extras=_cal_extras,
    )
)


def _execute_benchmark_run(params, store):
    from ..service.requests import RunRequest, execute_run_requests

    # Pure compute through the shared Request → Schedule → BatchJob path (the
    # same packer `repro serve` drives for many concurrent requests).  No
    # store is passed: the task-level caller owns the write for this key, and
    # execute_run_requests' own probe/put is the *server's* caching layer —
    # involving both here would double-put every record.
    request = RunRequest.from_params(params)
    (outcome,) = execute_run_requests([request]).values()
    return outcome.meta, {}


_register(
    TaskKind(
        name="benchmark_run",
        axes=("device", "cycle", "workload", "seed"),
        defaults={
            "cycle": 0,
            "shots": 2048,
            "trajectories": 60,
            # None = per-workload policy, as in hardware_scaling: mirror
            # workloads ride stabilizer_frames, the rest auto_dense.
            "engine": None,
            # Result-determining device bound: fixes the chunk/seed plan
            # (must equal service.requests.DEFAULT_MAX_SHOTS — tested).
            "max_shots": 8192,
        },
        execute=_execute_benchmark_run,
        key_extras=_cal_extras,
    )
)


def _execute_decoy_correlation(params, store):
    from ..analysis.decoy_quality import decoy_correlation_study
    from ..store.records import encode_decoy_correlation

    result = decoy_correlation_study(
        benchmark=str(params["benchmark"]),
        backend=_backend(params),
        decoy_kind=str(params["decoy_kind"]),
        dd_sequence=str(params["dd_sequence"]),
        shots=int(params["shots"]),
        seed=int(params["seed"]),
        max_qubits=int(params["max_qubits"]),
        store=store,
    )
    return encode_decoy_correlation(result)


_register(
    TaskKind(
        name="decoy_correlation",
        axes=("device", "cycle", "workload", "seed"),
        defaults={
            "cycle": 0,
            "decoy_kind": "cdc",
            "dd_sequence": "xy4",
            "shots": 2048,
            "max_qubits": 6,
        },
        execute=_execute_decoy_correlation,
        key_extras=_cal_extras,
    )
)


# ---------------------------------------------------------------------------
# The summary node (DAG root)
# ---------------------------------------------------------------------------


def _headline(meta: dict):
    """One glanceable number per record kind, for ``repro report``."""
    kind = meta.get("kind")
    if kind == "benchmark_evaluation":
        outcomes = meta.get("outcomes", {})
        adapt = outcomes.get("adapt")
        if adapt:
            return {"adapt_relative_fidelity": adapt["relative_fidelity"]}
        return {"policies": sorted(outcomes)}
    if kind == "benchmark_run":
        request = meta.get("request", {})
        headline = {
            "benchmark": request.get("benchmark"),
            "shots": meta.get("shots"),
            "chunks": meta.get("chunks"),
            "fidelity": meta.get("fidelity"),
        }
        if meta.get("mirror_target"):
            headline["success_probability"] = meta.get("success_probability")
            headline["verified"] = meta.get("mirror_verified")
        return headline
    if kind == "decoy_correlation":
        return {"correlation": meta.get("correlation")}
    if kind == "figure1":
        values = meta.get("values", {})
        best = max(values, key=values.get) if values else None
        return {"best_option": best}
    if kind == "hardware_scaling":
        rows = meta.get("rows", [])
        if rows:
            row = rows[0]
            headline = {
                "device": row.get("device"),
                "num_qubits": row.get("num_qubits"),
                "fidelity": row.get("fidelity"),
            }
            if row.get("mirror_target"):
                headline["success_probability"] = row.get("success_probability")
                headline["flip_free_probability"] = row.get("flip_free_probability")
                headline["verified"] = row.get("mirror_verified")
            return headline
        return {"rows": 0}
    if "rows" in meta:
        return {"rows": len(meta["rows"])}
    if "cycles" in meta:
        return {"cycles": sorted(meta["cycles"])}
    return {}


def _execute_summary(params, store):
    if store is None:
        raise ValueError("sweep_summary needs the store to read its inputs")
    tasks: Dict[str, str] = dict(params["tasks"])
    entries = {}
    for task_id, key in sorted(tasks.items()):
        record = store.get(key)
        entries[task_id] = {
            "key": key,
            "kind": None if record is None else record.kind,
            "headline": {} if record is None else _headline(record.meta),
        }
    return {"kind": "sweep_summary", "tasks": entries}, {}


_register(
    TaskKind(
        name="sweep_summary",
        axes=(),
        defaults={},
        execute=_execute_summary,
        key_extras=lambda p: {},
    )
)


def summary_task(leaves: Sequence[TaskSpec]) -> TaskSpec:
    """The DAG root: aggregates every leaf record after they all complete."""
    params = {"tasks": {leaf.task_id: leaf.key for leaf in leaves}}
    return TaskSpec(
        kind="sweep_summary",
        params=params,
        task_id="sweep_summary",
        key=resolve_task_key("sweep_summary", params),
        deps=tuple(leaf.task_id for leaf in leaves),
    )
