"""Crash-safe task leases: the work-stealing layer under ``repro sweep --join``.

Any number of orchestrator processes — on one box or on machines sharing a
filesystem — can drain the same sweep concurrently.  The store's
content-addressed records make the *results* location-independent; this
module makes the *scheduling* safe by giving every task exactly one live
owner at a time:

* **Claim** — a lease is a small JSON file under
  ``<store>/leases/<drain_key>/<task_key>.lease``.  Claiming hard-links a
  fully-written temp file onto that name: ``os.link`` fails atomically when
  the name exists (the POSIX/NFS-safe exclusive-create idiom), so exactly
  one claimant wins no matter how many race.  The store's atomic-rename
  temp-file conventions are reused for the payload write.
* **Liveness** — the holder re-stamps every held lease (one pass for all of
  them) on a heartbeat thread.  A lease whose heartbeat is older than its
  TTL belongs to a dead worker.
* **Expiry / steal** — breaking a stale lease renames it onto a unique
  tombstone: exactly one stealer's rename succeeds (the loser gets
  ``FileNotFoundError``), the winner re-validates staleness *from the
  tombstone* (closing the read-then-rename race against a concurrent
  steal-and-reclaim), deletes it and retries the normal claim.  A lease is
  therefore never broken while its holder heartbeats on schedule.  There is
  no fencing token: a holder that stalls past its TTL (suspended VM, long GC
  pause) can race its thief and the task may execute twice — harmless by
  design, because records are content-addressed and identical, and the
  store's atomic rename makes the second write a no-op.  Mutual exclusion
  here is a work-efficiency optimization; correctness rests on the store.
* **Release** — completed (or failed) tasks delete their lease; the store
  record, not the lease, is the source of truth for "done".  A claimant
  always probes the store before claiming, so releases never cause re-runs.

:func:`pack_claims` groups small ready tasks into worker-sized claim units
(the ``ScheduleItem``/``Scheduler`` packing idiom): one scheduling round
claims, executes and heartbeats a whole batch, amortizing the ready-scan,
store probes and lease I/O over ``max_tasks`` tasks instead of one.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..lint.annotations import guarded_by

__all__ = ["ClaimBatch", "LeaseManager", "pack_claims", "worker_identity"]


def worker_identity() -> str:
    """A filesystem-safe, cluster-unique worker id: host + pid + nonce."""
    host = "".join(
        c if c.isalnum() or c in "-_" else "-" for c in socket.gethostname()
    )
    return f"{host}-{os.getpid()}-{os.urandom(3).hex()}"


@dataclass
class ClaimBatch:
    """One worker-sized unit of leased work (the ``ScheduleItem`` idiom:
    pack heterogeneous small items into a bounded batch, spill the rest)."""

    max_tasks: int
    tasks: List = field(default_factory=list)

    def add(self, task) -> bool:
        """Accept ``task`` if there is room; an empty batch always accepts
        (a single oversized item must still be schedulable somewhere)."""
        if self.tasks and len(self.tasks) >= self.max_tasks:
            return False
        self.tasks.append(task)
        return True


def pack_claims(tasks: Sequence, max_tasks: int) -> List[List]:
    """Group ``tasks`` into claim batches of at most ``max_tasks`` each.

    Deterministic and order-preserving: every worker packs the same ready
    list the same way, so batches line up with the progress a reader of the
    journal expects.
    """
    batches: List[ClaimBatch] = []
    current = ClaimBatch(max_tasks=max(1, int(max_tasks)))
    for task in tasks:
        if not current.add(task):
            batches.append(current)
            current = ClaimBatch(max_tasks=max(1, int(max_tasks)))
            current.add(task)
    if current.tasks:
        batches.append(current)
    return [batch.tasks for batch in batches]


@guarded_by("_lock", "_held", "_thread")
class LeaseManager:
    """Claims, heartbeats, expires and releases task leases for one worker.

    ``_held`` (the task->lease map) and ``_thread`` (the heartbeat thread
    handle) are shared between claimer threads, the heartbeat thread and
    ``close()``; the ``@guarded_by`` annotation above makes ``repro lint``
    verify every access happens under ``self._lock``.

    Args:
        root: the store's ``leases/`` directory (always under the federation
            write root — every joining worker must share it).
        drain_key: content fingerprint of the task set being drained; leases
            of different sweeps never collide.
        worker_id: unique worker identity (defaults to host-pid-nonce).
        ttl_s: a lease whose heartbeat is older than this is considered
            abandoned and may be stolen.
        heartbeat_interval_s: re-stamp cadence (defaults to ``ttl_s / 4``).
    """

    def __init__(
        self,
        root: "Path | str",
        drain_key: str,
        worker_id: Optional[str] = None,
        ttl_s: float = 60.0,
        heartbeat_interval_s: Optional[float] = None,
    ) -> None:
        self.dir = Path(root) / drain_key[:16]
        self.worker_id = worker_id or worker_identity()
        self.ttl_s = max(0.05, float(ttl_s))
        self.heartbeat_interval_s = float(
            heartbeat_interval_s if heartbeat_interval_s is not None else self.ttl_s / 4
        )
        self._held: Dict[str, Path] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- paths / payloads ----------------------------------------------

    def _path(self, task_key: str) -> Path:
        return self.dir / f"{task_key}.lease"

    def _payload(self, task_id: str, claimed_at: Optional[float] = None) -> bytes:
        now = time.time()
        return json.dumps(
            {
                "worker": self.worker_id,
                "task_id": task_id,
                "claimed_at": claimed_at if claimed_at is not None else now,
                "heartbeat_at": now,
                "ttl_s": self.ttl_s,
            },
            sort_keys=True,
        ).encode("utf-8")

    def _write_tmp(self, data: bytes) -> Path:
        self.dir.mkdir(parents=True, exist_ok=True)
        tmp = self.dir / f".tmp-{self.worker_id}-{os.urandom(4).hex()}"
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        return tmp

    # -- claiming -------------------------------------------------------

    def try_claim(self, task_key: str, task_id: str = "") -> bool:
        """Attempt to become the exclusive owner of ``task_key``.

        Returns ``False`` when another worker holds a *live* lease.  A stale
        lease (heartbeat past its TTL) is broken first, then re-claimed —
        still racing fairly against every other would-be stealer.
        """
        path = self._path(task_key)
        for attempt in range(2):
            tmp = self._write_tmp(self._payload(task_id))
            try:
                os.link(tmp, path)
            except FileExistsError:
                if attempt or not self._break_if_expired(path):
                    return False
                continue  # stale lease broken: one more exclusive-create try
            finally:
                tmp.unlink(missing_ok=True)
            with self._lock:
                self._held[task_key] = path
            self._ensure_heartbeat()
            return True
        return False  # pragma: no cover - both attempts lost the race

    def _stale(self, info: dict) -> bool:
        ttl = float(info.get("ttl_s", self.ttl_s))
        return time.time() - float(info.get("heartbeat_at", 0.0)) > ttl

    def _break_if_expired(self, path: Path) -> bool:
        """Break ``path`` if its holder stopped heartbeating.  True when the
        name is (now) free to claim."""
        info = self._read(path)
        if info is None:
            return True  # released or already broken — free
        if not self._stale(info):
            return False
        tombstone = path.with_name(f".steal-{self.worker_id}-{os.urandom(3).hex()}")
        try:
            os.replace(path, tombstone)
        except FileNotFoundError:
            return True  # another stealer (or a release) got there first
        # Re-validate from the tombstone, which we now exclusively own:
        # between our staleness read and the rename, a rival may have stolen
        # and re-claimed the name — then we just renamed a *live* lease.
        # Put it back and report the name as taken.
        stolen = self._read(tombstone)
        if stolen is not None and not self._stale(stolen):
            try:
                os.link(tombstone, path)
            except FileExistsError:
                pass  # a third claimant took the name; the live holder's
                # next heartbeat re-stamps it onto this path anyway
            tombstone.unlink(missing_ok=True)
            return False
        tombstone.unlink(missing_ok=True)
        return True

    @staticmethod
    def _read(path: Path) -> Optional[dict]:
        try:
            with open(path, encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            # Unreadable lease: report liveness from the file's mtime so a
            # damaged lease still expires rather than wedging the task.
            try:
                return {"heartbeat_at": path.stat().st_mtime, "worker": "<unreadable>"}
            except FileNotFoundError:
                return None

    # -- liveness -------------------------------------------------------

    def holder(self, task_key: str) -> Optional[dict]:
        """The current lease payload for ``task_key`` (None when unleased)."""
        return self._read(self._path(task_key))

    def is_expired(self, task_key: str) -> bool:
        """True when the lease is gone or its heartbeat is past the TTL —
        i.e. when the task is claimable again."""
        info = self._read(self._path(task_key))
        if info is None:
            return True
        ttl = float(info.get("ttl_s", self.ttl_s))
        return time.time() - float(info.get("heartbeat_at", 0.0)) > ttl

    def heartbeat_now(self) -> int:
        """Re-stamp every held lease in one pass; returns how many."""
        with self._lock:
            held = dict(self._held)
        stamped = 0
        for task_key, path in held.items():
            info = self._read(path)
            owner = None if info is None else info.get("worker")
            if owner not in (None, self.worker_id, "<unreadable>"):
                # Stolen from under us (we stalled past our own TTL): the
                # thief owns the task now — don't clobber its lease, stop
                # treating the task as held.  The store's content-addressed
                # writes keep the duplicated execution harmless.
                with self._lock:
                    self._held.pop(task_key, None)
                continue
            claimed_at = None if info is None else info.get("claimed_at")
            task_id = "" if info is None else str(info.get("task_id", ""))
            tmp = self._write_tmp(self._payload(task_id, claimed_at=claimed_at))
            os.replace(tmp, path)  # we own the name; last-wins is ourselves
            stamped += 1
        return stamped

    def _ensure_heartbeat(self) -> None:
        def _beat() -> None:
            while not self._stop.wait(self.heartbeat_interval_s):
                try:
                    self.heartbeat_now()
                except OSError:  # pragma: no cover - e.g. store dir removed
                    pass

        # Check-and-spawn under the lock: two claimers racing through here
        # used to be able to start two heartbeat threads (harmless but
        # wasteful, and close() would only join the second).
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._thread = threading.Thread(
                target=_beat, name=f"lease-heartbeat-{self.worker_id}", daemon=True
            )
            self._thread.start()

    # -- release --------------------------------------------------------

    @property
    def held(self) -> List[str]:
        with self._lock:
            return sorted(self._held)

    def release(self, task_key: str) -> None:
        with self._lock:
            path = self._held.pop(task_key, None)
        if path is not None:
            path.unlink(missing_ok=True)

    def close(self, abandon: bool = False) -> None:
        """Stop heartbeating and release everything still held.

        ``abandon=True`` (or ``REPRO_TEST_ABANDON_LEASES=1`` in the
        environment — the deterministic crash simulation used by the
        recovery tests) leaves the lease files on disk exactly as a killed
        worker would, so expiry/steal paths can be exercised end-to-end.
        """
        self._stop.set()
        # Take the handle under the lock, join outside it: the heartbeat
        # thread acquires _lock in heartbeat_now(), so joining while holding
        # the lock could stall the join until its timeout.
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join(timeout=5.0)
        if (
            abandon
            or os.environ.get("REPRO_TEST_ABANDON_LEASES") == "1"
            or os.environ.get("REPRO_TEST_CRASH_AFTER_CLAIMS")
        ):
            with self._lock:
                self._held.clear()
            return
        for task_key in self.held:
            self.release(task_key)
