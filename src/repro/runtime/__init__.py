"""Resumable sweep orchestration over the experiment store.

The paper's artifacts are sweeps: devices x calibration cycles x DD policies
x workloads x seeds.  This package turns a *declarative* description of such
a sweep (:class:`~repro.runtime.spec.SweepSpec`) into a task DAG
(:class:`~repro.runtime.spec.TaskSpec` leaves plus an aggregating summary
node), resolves every task to its content-addressed store key, skips the ones
the store already holds, feeds the rest *continuously* (settled in
completion order, no frontier barriers) to the existing worker-pool
machinery (:func:`repro.hardware.batch.create_worker_pool`) — pooled workers
checkpoint their own results — and, under ``--join``, lets any number of
processes or machines drain one sweep cooperatively through crash-safe task
leases (:mod:`repro.runtime.leases`): an interrupted or killed worker costs
only its in-flight tasks, which are re-leased after heartbeat expiry.

Entry points:

* :class:`~repro.runtime.orchestrator.SweepOrchestrator` — the programmatic
  API;
* ``python -m repro sweep [--join]`` — the CLI front-end (:mod:`repro.cli`).
"""

from .leases import LeaseManager, pack_claims
from .orchestrator import SweepOrchestrator, SweepReport, TaskResult, partial_summary
from .spec import SweepSpec, TaskSpec, expand_sweep, smoke_spec
from .tasks import available_task_kinds, resolve_task_key, run_task

__all__ = [
    "LeaseManager",
    "SweepOrchestrator",
    "SweepReport",
    "SweepSpec",
    "TaskResult",
    "TaskSpec",
    "available_task_kinds",
    "expand_sweep",
    "pack_claims",
    "partial_summary",
    "resolve_task_key",
    "run_task",
    "smoke_spec",
]
