"""Resumable sweep orchestration over the experiment store.

The paper's artifacts are sweeps: devices x calibration cycles x DD policies
x workloads x seeds.  This package turns a *declarative* description of such
a sweep (:class:`~repro.runtime.spec.SweepSpec`) into a task DAG
(:class:`~repro.runtime.spec.TaskSpec` leaves plus an aggregating summary
node), resolves every task to its content-addressed store key, skips the ones
the store already holds, fans the rest out over the existing
worker-pool machinery (:func:`repro.hardware.batch.create_worker_pool`), and
checkpoints each result into the store the moment it completes — so an
interrupted sweep resumes with zero recomputation of finished tasks.

Entry points:

* :class:`~repro.runtime.orchestrator.SweepOrchestrator` — the programmatic
  API;
* ``python -m repro sweep`` — the CLI front-end (:mod:`repro.cli`).
"""

from .orchestrator import SweepOrchestrator, SweepReport, TaskResult
from .spec import SweepSpec, TaskSpec, expand_sweep, smoke_spec
from .tasks import available_task_kinds, resolve_task_key, run_task

__all__ = [
    "SweepOrchestrator",
    "SweepReport",
    "SweepSpec",
    "TaskResult",
    "TaskSpec",
    "available_task_kinds",
    "expand_sweep",
    "resolve_task_key",
    "run_task",
    "smoke_spec",
]
