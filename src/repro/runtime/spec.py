"""Declarative sweep specifications and their expansion into task DAGs.

A :class:`SweepSpec` names a task *kind* (one of the registered experiment
drivers — see :mod:`repro.runtime.tasks`) and the axes to sweep: devices,
calibration cycles, workloads and seeds.  :func:`expand_sweep` takes the
cartesian product over the axes the kind actually uses and emits one
:class:`TaskSpec` per point, plus a ``sweep_summary`` node that depends on
every leaf — a two-level DAG the orchestrator schedules in dependency order.

Specs serialise to/from JSON (``repro sweep --spec file.json``); a spec file
holds either a single sweep object or ``{"name": ..., "sweeps": [...]}`` to
fuse several sweeps into one DAG under a shared summary.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["TaskSpec", "SweepSpec", "expand_sweep", "smoke_spec", "load_spec"]


@dataclass
class TaskSpec:
    """One schedulable unit: a task kind, its parameters, its dependencies.

    ``task_id`` is the human-readable name inside one sweep (shown by
    ``repro report``); ``key`` is the content-addressed store key, resolved
    at expansion time by :func:`repro.runtime.tasks.resolve_task_key`.
    ``deps`` lists the ``task_id``s that must complete (or be cached) first.
    """

    kind: str
    params: Dict[str, object]
    task_id: str
    key: str = ""
    deps: Tuple[str, ...] = ()


@dataclass
class SweepSpec:
    """A declarative sweep: one task kind crossed over its axes.

    Axes not used by the kind (e.g. ``workloads`` for a device-level
    characterisation) are ignored; ``params`` carries the shared budget knobs
    (shots, trajectories, ...) merged into every task's parameters.
    """

    name: str
    kind: str
    devices: Sequence[str] = ("ibmq_rome",)
    cycles: Sequence[int] = (0,)
    workloads: Sequence[str] = ()
    seeds: Sequence[int] = (0,)
    params: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "devices": list(self.devices),
            "cycles": [int(c) for c in self.cycles],
            "workloads": list(self.workloads),
            "seeds": [int(s) for s in self.seeds],
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SweepSpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown sweep spec fields: {sorted(unknown)}")
        return cls(**payload)  # type: ignore[arg-type]


def expand_sweep(
    specs: "SweepSpec | Sequence[SweepSpec]",
    summary: bool = True,
) -> List[TaskSpec]:
    """Expand sweep spec(s) into a task DAG (leaves + optional summary node).

    Every leaf's store key is resolved here — key resolution is pure and
    cheap (device/calibration fingerprints are memoized per process), so the
    orchestrator can decide cached-vs-pending for the whole DAG up front.
    """
    from .tasks import axes_of, resolve_task_key

    if isinstance(specs, SweepSpec):
        specs = [specs]
    tasks: List[TaskSpec] = []
    seen_ids: Dict[str, TaskSpec] = {}
    seen_keys: set = set()
    for spec in specs:
        axes = axes_of(spec.kind)
        pools: List[List] = []
        names: List[str] = []
        if "device" in axes:
            pools.append(list(spec.devices))
            names.append("device")
        if "cycle" in axes:
            pools.append([int(c) for c in spec.cycles])
            names.append("cycle")
        if "workload" in axes:
            if not spec.workloads:
                raise ValueError(
                    f"sweep '{spec.name}' of kind '{spec.kind}' needs workloads"
                )
            pools.append(list(spec.workloads))
            names.append("benchmark")
        if "seed" in axes:
            pools.append([int(s) for s in spec.seeds])
            names.append("seed")
        for point in itertools.product(*pools):
            params = dict(spec.params)
            params.update(dict(zip(names, point)))
            key = resolve_task_key(spec.kind, params)
            if key in seen_keys:
                continue  # fused sweeps may overlap; one task per key is enough
            seen_keys.add(key)
            task_id = f"{spec.kind}:" + ":".join(str(v) for v in point)
            if task_id in seen_ids:
                # Same axes but different params (distinct keys): keep both,
                # disambiguated by a key prefix so journals stay per-task.
                task_id = f"{task_id}#{key[:8]}"
            task = TaskSpec(
                kind=spec.kind,
                params=params,
                task_id=task_id,
                key=key,
            )
            seen_ids[task_id] = task
            tasks.append(task)
    if summary and tasks:
        from .tasks import summary_task

        tasks.append(summary_task([t for t in tasks]))
    return tasks


def load_spec(path: str) -> List[SweepSpec]:
    """Load one or many sweep specs from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if "sweeps" in payload:
        shared = payload.get("name", "sweep")
        return [
            SweepSpec.from_dict({"name": f"{shared}/{i}", **entry})
            for i, entry in enumerate(payload["sweeps"])
        ]
    return [SweepSpec.from_dict(payload)]


def smoke_spec(scale: float = 1.0, seed: int = 7) -> List[SweepSpec]:
    """The built-in CLI smoke sweep: tiny but exercises every layer.

    One motivation figure, one calibration-drift probe, one full policy
    comparison (ADAPT + Runtime-Best included) and two heavy-hex scaling
    points on the 127-qubit Eagle lattice — the fixed QFT-6A transpile
    probe plus a parametric ``MIRROR:48@7`` verification workload whose
    48-qubit active space actually exercises the device-scale
    stabilizer-frames path — enough to touch the transpiler (cached
    distance matrices at scale included), the batch executor, both
    stabilizer fast paths and the store, in a few seconds.  ``scale``
    multiplies the shot budgets (the CI job uses the default).
    """
    shots = max(64, int(512 * scale))
    return [
        SweepSpec(
            name="smoke/motivation",
            kind="figure1",
            devices=("ibmq_london",),
            cycles=(0,),
            seeds=(seed,),
            params={"shots": shots},
        ),
        SweepSpec(
            name="smoke/drift",
            kind="drift",
            devices=("ibmq_rome",),
            seeds=(seed,),
            params={
                "cycles": [0, 1],
                "idle_qubit": 0,
                "link": [1, 2],
                "idle_ns": 1200.0,
                "thetas": [1.5707963267948966],
                "shots": shots,
            },
        ),
        SweepSpec(
            name="smoke/scaling",
            kind="hardware_scaling",
            devices=("ibm_washington",),
            cycles=(0,),
            workloads=("QFT-6A", "MIRROR:48@7"),
            seeds=(seed,),
            params={"shots": shots, "trajectories": 40},
        ),
        SweepSpec(
            name="smoke/evaluation",
            kind="policy_comparison",
            devices=("ibmq_rome",),
            cycles=(0,),
            workloads=("ADDER-4",),
            seeds=(seed,),
            params={
                "shots": shots,
                "decoy_shots": max(64, int(256 * scale)),
                "trajectories": 40,
                "runtime_best_max_evaluations": 8,
            },
        ),
    ]
