"""The resumable sweep orchestrator.

Scheduling model: the expanded task list is a DAG (independent experiment
leaves plus aggregate nodes whose ``deps`` name their inputs).  The
orchestrator repeatedly takes the *ready frontier* — tasks whose dependencies
are all settled — and for each ready task:

1. looks its content-addressed key up in the store: a hit means the task is
   **skipped** (this is also how resumption works: there is no separate
   resume protocol, a re-run of the same spec simply finds its finished
   prefix in the store);
2. otherwise executes it — inline, or fanned out over a ``fork`` worker pool
   (:func:`repro.hardware.batch.create_worker_pool`) — and **checkpoints**
   the result into the store immediately, before scheduling anything else
   from the next frontier.

Interruption at any point (``KeyboardInterrupt``, a killed worker, a crashed
machine) therefore loses at most the tasks in flight; everything completed is
durable.  A journal under ``<store>/sweeps/`` records the latest status of
every task for ``repro report``.

Determinism: tasks carry explicit seeds in their parameters, so executing
them in a pool, in any order, or across interrupted sessions produces
bit-identical records — asserted end-to-end by
``benchmarks/test_perf_store.py``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..store.keys import fingerprint
from ..store.store import ExperimentStore
from .spec import SweepSpec, TaskSpec, expand_sweep
from .tasks import merged_params, run_task

__all__ = ["TaskResult", "SweepReport", "SweepOrchestrator"]


@dataclass
class TaskResult:
    """Outcome of one task inside one orchestrator run."""

    task_id: str
    kind: str
    key: str
    status: str  # "cached" | "executed" | "failed" | "blocked" | "pending"
    seconds: float = 0.0
    error: Optional[str] = None


@dataclass
class SweepReport:
    """What one orchestrator run did (not the results themselves — those are
    in the store, addressed by each task's key)."""

    name: str
    sweep_key: str
    tasks: List[TaskResult] = field(default_factory=list)
    interrupted: bool = False

    def _by_status(self, status: str) -> List[TaskResult]:
        return [t for t in self.tasks if t.status == status]

    @property
    def executed(self) -> List[TaskResult]:
        return self._by_status("executed")

    @property
    def cached(self) -> List[TaskResult]:
        return self._by_status("cached")

    @property
    def failed(self) -> List[TaskResult]:
        return self._by_status("failed")

    @property
    def pending(self) -> List[TaskResult]:
        return [t for t in self.tasks if t.status in ("pending", "blocked")]

    def summary_line(self) -> str:
        return (
            f"{self.name}: {len(self.executed)} executed,"
            f" {len(self.cached)} cached, {len(self.failed)} failed,"
            f" {len(self.pending)} pending"
        )


def _execute_remote(payload):
    """Worker-side task execution (top-level for pickling under fork).

    Returns ``(meta, arrays, seconds)`` — the worker measures its own wall
    time, since the parent only observes future-wait time, which is wrong
    for every task but the slowest in a frontier.
    """
    kind, params, store_root = payload
    store = None if store_root is None else ExperimentStore(store_root)
    start = time.perf_counter()
    meta, arrays = run_task(kind, params, store)
    return meta, arrays, time.perf_counter() - start


class SweepOrchestrator:
    """Expands sweep specs, skips stored tasks, runs and checkpoints the rest.

    Args:
        store: the experiment store all results flow through.
        n_workers: fan ready tasks out over this many ``fork`` worker
            processes (1 = inline).  Workers open their own store handle on
            the same root; atomic-rename writes keep concurrent writers safe.
        progress: optional callable invoked with one line per settled task
            (the CLI passes ``print``).
    """

    def __init__(
        self,
        store: ExperimentStore,
        n_workers: int = 1,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.store = store
        self.n_workers = max(1, int(n_workers))
        self._progress = progress or (lambda line: None)

    # ------------------------------------------------------------------

    def run(
        self,
        spec: "SweepSpec | Sequence[SweepSpec] | Sequence[TaskSpec]",
        name: Optional[str] = None,
        recompute: bool = False,
        max_executions: Optional[int] = None,
    ) -> SweepReport:
        """Run a sweep to completion (or until the execution budget is spent).

        Args:
            spec: a sweep spec, several specs fused into one DAG, or an
                already-expanded task list.
            recompute: execute every task even when its key is stored
                (results are re-written; used to validate determinism).
            max_executions: stop scheduling new *executions* after this many
                (cache hits don't count).  Tasks left behind are reported as
                ``pending`` — this is the hook the interrupt-and-resume tests
                use to simulate a killed sweep deterministically.
        """
        tasks = self._expand(spec)
        name = name or (spec.name if isinstance(spec, SweepSpec) else "sweep")
        sweep_key = fingerprint(
            {"name": name, "tasks": sorted(t.key for t in tasks)}
        )
        report = SweepReport(name=name, sweep_key=sweep_key)
        results: Dict[str, TaskResult] = {
            t.task_id: TaskResult(t.task_id, t.kind, t.key, "pending") for t in tasks
        }
        report.tasks = [results[t.task_id] for t in tasks]
        by_id = {t.task_id: t for t in tasks}
        done: set = set()
        failed: set = set()
        budget = [max_executions]

        pool = None
        if self.n_workers > 1:
            from ..hardware.batch import create_worker_pool

            pool = create_worker_pool(self.n_workers)
        try:
            while True:
                ready = [
                    t
                    for t in tasks
                    if results[t.task_id].status == "pending"
                    and all(dep in done for dep in t.deps)
                ]
                if not ready:
                    break
                progressed = self._run_frontier(
                    ready, results, done, recompute, budget, pool
                )
                self._write_journal(name, sweep_key, tasks, results)
                if not progressed:
                    break
            failed.update(
                t.task_id for t in tasks if results[t.task_id].status == "failed"
            )
            for task in tasks:
                if results[task.task_id].status == "pending" and any(
                    dep in failed for dep in task.deps
                ):
                    results[task.task_id].status = "blocked"
        except KeyboardInterrupt:
            report.interrupted = True
        finally:
            if pool is not None:
                # On interrupt, drop everything still queued — a Ctrl-C must
                # not block on a frontier's worth of unstarted tasks.  The
                # store already holds every completed result, so the next
                # run resumes exactly where this one stopped.
                pool.shutdown(cancel_futures=report.interrupted)
            self._write_journal(name, sweep_key, tasks, results)
            self.store.flush_session_stats()
        return report

    # ------------------------------------------------------------------

    def _expand(self, spec) -> List[TaskSpec]:
        if isinstance(spec, SweepSpec):
            return expand_sweep(spec)
        spec = list(spec)
        if spec and isinstance(spec[0], SweepSpec):
            return expand_sweep(spec)
        return spec

    def _settle(self, result: TaskResult, status: str, seconds: float = 0.0) -> None:
        result.status = status
        result.seconds = seconds
        self._progress(
            f"[{status:>8}] {result.task_id}"
            + (f" ({seconds:.2f}s)" if status == "executed" else "")
        )

    def _run_frontier(
        self,
        ready: List[TaskSpec],
        results: Dict[str, TaskResult],
        done: set,
        recompute: bool,
        budget: List[Optional[int]],
        pool,
    ) -> bool:
        """Settle one ready frontier.  Returns False when nothing progressed
        (budget exhausted with only executable tasks left)."""
        progressed = False
        to_execute: List[TaskSpec] = []
        for task in ready:
            if not recompute and self.store.contains(task.key):
                self._settle(results[task.task_id], "cached")
                done.add(task.task_id)
                progressed = True
            else:
                to_execute.append(task)
        if budget[0] is not None:
            allowed = max(0, budget[0])
            to_execute, deferred = to_execute[:allowed], to_execute[allowed:]
        else:
            deferred = []
        if to_execute and pool is not None:
            progressed |= self._execute_pooled(to_execute, results, done, pool)
        else:
            for task in to_execute:
                progressed |= self._execute_inline(task, results, done)
        if budget[0] is not None:
            budget[0] -= len(to_execute)
        # Deferred tasks stay "pending"; with an exhausted budget and no other
        # progress the main loop terminates rather than spinning.
        return progressed or (not deferred and not to_execute)

    def _execute_inline(
        self, task: TaskSpec, results: Dict[str, TaskResult], done: set
    ) -> bool:
        start = time.perf_counter()
        try:
            meta, arrays = run_task(task.kind, task.params, self.store)
        except KeyboardInterrupt:
            raise
        except Exception as exc:  # noqa: BLE001 - a task failure must not kill the sweep
            self._settle(results[task.task_id], "failed")
            results[task.task_id].error = f"{type(exc).__name__}: {exc}"
            return True
        self.store.put(task.key, meta, arrays)
        self._settle(results[task.task_id], "executed", time.perf_counter() - start)
        done.add(task.task_id)
        return True

    def _execute_pooled(
        self, tasks: List[TaskSpec], results: Dict[str, TaskResult], done: set, pool
    ) -> bool:
        payloads = [
            (t.kind, merged_params(t.kind, t.params), str(self.store.root))
            for t in tasks
        ]
        futures = [pool.submit(_execute_remote, payload) for payload in payloads]
        progressed = False
        for task, future in zip(tasks, futures):
            try:
                meta, arrays, seconds = future.result()
            except KeyboardInterrupt:
                raise
            except Exception as exc:  # noqa: BLE001
                self._settle(results[task.task_id], "failed")
                results[task.task_id].error = f"{type(exc).__name__}: {exc}"
                progressed = True
                continue
            self.store.put(task.key, meta, arrays)
            self._settle(results[task.task_id], "executed", seconds)
            done.add(task.task_id)
            progressed = True
        return progressed

    # ------------------------------------------------------------------

    def _write_journal(
        self,
        name: str,
        sweep_key: str,
        tasks: List[TaskSpec],
        results: Dict[str, TaskResult],
    ) -> None:
        """Checkpoint the sweep's status under ``<store>/sweeps/``.

        The journal is bookkeeping for ``repro report`` — resumption itself
        never reads it (the store's keys are the source of truth), so a lost
        or stale journal can not corrupt a sweep.
        """
        safe_name = "".join(c if c.isalnum() or c in "-_." else "_" for c in name)
        path = self.store.sweeps_dir / f"{safe_name}-{sweep_key[:12]}.json"
        payload = {
            "name": name,
            "sweep_key": sweep_key,
            "updated_at": time.time(),
            "tasks": {
                t.task_id: {
                    "kind": t.kind,
                    "key": t.key,
                    "status": results[t.task_id].status,
                    "seconds": results[t.task_id].seconds,
                    "error": results[t.task_id].error,
                }
                for t in tasks
            },
        }
        self.store._atomic_write(
            path, json.dumps(payload, sort_keys=True, indent=1).encode("utf-8")
        )
