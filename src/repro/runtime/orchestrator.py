"""The resumable, work-stealing sweep orchestrator.

Scheduling model: the expanded task list is a DAG (independent experiment
leaves plus aggregate nodes whose ``deps`` name their inputs).  Scheduling is
**continuous**, not frontier-synchronous: every task whose dependencies are
settled sits in a ready queue, pooled futures are settled in *completion*
order (no head-of-line blocking on a slow sibling), and each settle
immediately enqueues whatever it unblocked.  For each ready task the
orchestrator:

1. looks its content-addressed key up in the store: a hit means the task is
   **skipped** (this is also how resumption works: there is no separate
   resume protocol, a re-run of the same spec simply finds its finished
   prefix in the store — and with federated read roots, possibly someone
   else's finished prefix);
2. otherwise executes it — inline, or fanned out over a ``fork`` worker pool
   (:func:`repro.hardware.batch.create_worker_pool`).  Pooled workers
   **checkpoint the result into the store themselves** and return only
   ``(status, key, seconds)`` — result payloads never round-trip through the
   pool pipe.

With ``join=True`` (CLI: ``repro sweep --join``) the orchestrator also
claims each task through the crash-safe lease layer
(:mod:`repro.runtime.leases`) before executing it, so any number of
processes — or machines on a shared filesystem — drain one sweep
concurrently: tasks leased elsewhere are polled in the store and settle as
cache hits when their owner checkpoints them; leases whose owner died are
re-leased after expiry.  The contract throughout is the store's: the same
spec drained by any number of workers, in any order, with any interleaving
of crashes, converges to bit-identical stored artifacts.

Interruption at any point (``KeyboardInterrupt``, a killed worker, a crashed
machine) therefore loses at most the tasks in flight; everything completed is
durable.  A journal under ``<store>/sweeps/`` records the latest status of
every task for ``repro report`` — written on settle batches, throttled to a
minimum interval (a sweep of n tasks no longer rewrites O(n²) journal
bytes), with the final write unconditional.

Determinism: tasks carry explicit seeds in their parameters, so executing
them in a pool, in any order, or across interrupted sessions produces
bit-identical records — asserted end-to-end by
``benchmarks/test_perf_store.py`` and ``benchmarks/test_perf_sweep.py``.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from ..store.keys import fingerprint
from ..store.store import ExperimentStore
from .leases import LeaseManager, pack_claims, worker_identity
from .spec import SweepSpec, TaskSpec, expand_sweep
from .tasks import merged_params, run_task

__all__ = ["TaskResult", "SweepReport", "SweepOrchestrator", "partial_summary"]


@dataclass
class TaskResult:
    """Outcome of one task inside one orchestrator run."""

    task_id: str
    kind: str
    key: str
    status: str  # "cached" | "executed" | "failed" | "blocked" | "pending"
    seconds: float = 0.0
    error: Optional[str] = None
    #: the failed upstream task id a "blocked" task is waiting on
    blocked_on: Optional[str] = None


@dataclass
class SweepReport:
    """What one orchestrator run did (not the results themselves — those are
    in the store, addressed by each task's key)."""

    name: str
    sweep_key: str
    tasks: List[TaskResult] = field(default_factory=list)
    interrupted: bool = False
    #: how many times the journal was checkpointed (throttled + final)
    journal_writes: int = 0

    def _by_status(self, status: str) -> List[TaskResult]:
        return [t for t in self.tasks if t.status == status]

    @property
    def executed(self) -> List[TaskResult]:
        return self._by_status("executed")

    @property
    def cached(self) -> List[TaskResult]:
        return self._by_status("cached")

    @property
    def failed(self) -> List[TaskResult]:
        return self._by_status("failed")

    @property
    def blocked(self) -> List[TaskResult]:
        return self._by_status("blocked")

    @property
    def pending(self) -> List[TaskResult]:
        return self._by_status("pending")

    def summary_line(self) -> str:
        line = (
            f"{self.name}: {len(self.executed)} executed,"
            f" {len(self.cached)} cached, {len(self.failed)} failed,"
            f" {len(self.blocked)} blocked, {len(self.pending)} pending"
        )
        upstream = sorted({t.blocked_on for t in self.blocked if t.blocked_on})
        if upstream:
            line += f" (blocked on: {', '.join(upstream)})"
        return line


def _execute_remote(payload):
    """Worker-side task execution (top-level for pickling under fork).

    The worker opens its own (possibly federated) store handle, runs the
    task, **checkpoints the record itself** and returns only
    ``(status, key, seconds, error)`` — the parent never decodes, re-encodes
    or re-writes result arrays, and a slow sibling in the same batch cannot
    delay this record becoming durable.
    """
    kind, params, store_spec, key = payload
    store = ExperimentStore.from_spec(store_spec)
    start = time.perf_counter()
    try:
        meta, arrays = run_task(kind, params, store)
    except Exception as exc:  # noqa: BLE001 - report, don't kill the pool
        return ("failed", key, time.perf_counter() - start, f"{type(exc).__name__}: {exc}")
    store.put(key, meta, arrays)
    store.flush_session_stats()
    return ("executed", key, time.perf_counter() - start, None)


def partial_summary(store: ExperimentStore, tasks_map: Dict[str, dict]) -> dict:
    """Aggregate whatever subset of a sweep's leaf records already exists.

    ``tasks_map`` is a journal's ``tasks`` payload (task_id → entry with
    ``kind``/``key``).  The result mirrors a ``sweep_summary`` record but is
    explicitly marked ``partial`` with its leaf coverage — the streamed
    mid-sweep view behind ``repro report --partial``, usable while workers
    are still draining (or after a crash, to see what survived).
    """
    from .tasks import _headline

    entries: Dict[str, dict] = {}
    stored = 0
    total = 0
    for task_id, entry in sorted(tasks_map.items()):
        if entry.get("kind") == "sweep_summary":
            continue
        total += 1
        record = store.get(str(entry.get("key")))
        if record is None:
            continue
        stored += 1
        entries[task_id] = {
            "key": entry.get("key"),
            "kind": record.kind,
            "headline": _headline(record.meta),
        }
    return {
        "kind": "sweep_summary",
        "partial": stored < total,
        "coverage": {"stored": stored, "total": total},
        "tasks": entries,
    }


class SweepOrchestrator:
    """Expands sweep specs, skips stored tasks, runs and checkpoints the rest.

    Args:
        store: the experiment store all results flow through (possibly
            federated; writes, journals and leases live on its write root).
        n_workers: fan ready tasks out over this many ``fork`` worker
            processes (1 = inline).  Workers open their own store handle on
            the same spec; atomic-rename writes keep concurrent writers safe.
        progress: optional callable invoked with one line per settled task
            (the CLI passes ``print``).  Lines appear in **completion**
            order, not submission order.
        join: claim every execution through the lease layer so concurrent
            ``--join`` processes (any host sharing the write root) drain the
            same sweep without duplicating work.
        lease_ttl_s: heartbeat TTL after which a dead worker's leases are
            stolen.
        lease_pack: tasks per claim batch (None = auto: scale with the ready
            set, bounded so joining late still gets a fair share).
        poll_interval_s: store/lease re-check cadence while waiting on tasks
            leased to another worker.
        journal_min_interval_s: minimum seconds between journal rewrites
            (the final write is always unconditional).
    """

    def __init__(
        self,
        store: ExperimentStore,
        n_workers: int = 1,
        progress: Optional[Callable[[str], None]] = None,
        join: bool = False,
        lease_ttl_s: float = 60.0,
        lease_pack: Optional[int] = None,
        poll_interval_s: float = 0.1,
        journal_min_interval_s: float = 0.5,
        worker_id: Optional[str] = None,
    ) -> None:
        self.store = store
        self.n_workers = max(1, int(n_workers))
        self._progress = progress or (lambda line: None)
        self.join = bool(join)
        self.lease_ttl_s = float(lease_ttl_s)
        self.lease_pack = lease_pack
        self.poll_interval_s = max(0.01, float(poll_interval_s))
        self.journal_min_interval_s = max(0.0, float(journal_min_interval_s))
        self.worker_id = worker_id or worker_identity()

    # ------------------------------------------------------------------

    def run(
        self,
        spec: "SweepSpec | Sequence[SweepSpec] | Sequence[TaskSpec]",
        name: Optional[str] = None,
        recompute: bool = False,
        max_executions: Optional[int] = None,
    ) -> SweepReport:
        """Run a sweep to completion (or until the execution budget is spent).

        Args:
            spec: a sweep spec, several specs fused into one DAG, or an
                already-expanded task list.
            recompute: execute every task even when its key is stored
                (results are re-written; used to validate determinism).
            max_executions: stop scheduling new *executions* after this many
                (cache hits don't count).  Tasks left behind are reported as
                ``pending`` — this is the hook the interrupt-and-resume tests
                use to simulate a killed sweep deterministically.
        """
        tasks = self._expand(spec)
        name = name or (spec.name if isinstance(spec, SweepSpec) else "sweep")
        sweep_key = fingerprint(
            {"name": name, "tasks": sorted(t.key for t in tasks)}
        )
        report = SweepReport(name=name, sweep_key=sweep_key)
        results: Dict[str, TaskResult] = {
            t.task_id: TaskResult(t.task_id, t.kind, t.key, "pending") for t in tasks
        }
        report.tasks = [results[t.task_id] for t in tasks]

        # DAG bookkeeping for continuous scheduling.
        unsettled: Dict[str, set] = {t.task_id: set(t.deps) for t in tasks}
        dependents: Dict[str, List[TaskSpec]] = {}
        for task in tasks:
            for dep in task.deps:
                dependents.setdefault(dep, []).append(task)
        ready = deque(t for t in tasks if not unsettled[t.task_id])
        deferred: List[TaskSpec] = []  # budget-parked, stays "pending"
        remote: Dict[str, TaskSpec] = {}  # leased by another worker
        in_flight: Dict[object, TaskSpec] = {}
        executions = 0

        leases: Optional[LeaseManager] = None
        if self.join:
            # Leases are keyed by the *content* of the task set (not the
            # sweep name) so joiners agree on the lease directory no matter
            # what --name they passed.
            drain_key = fingerprint({"tasks": sorted(t.key for t in tasks)})
            leases = LeaseManager(
                self.store.leases_dir,
                drain_key,
                worker_id=self.worker_id,
                ttl_s=self.lease_ttl_s,
            )
        pool = None
        if self.n_workers > 1:
            from ..hardware.batch import create_worker_pool

            pool = create_worker_pool(self.n_workers)

        last_journal = [float("-inf")]
        # Deterministic crash simulation (recovery tests / CI): claim this
        # many tasks, then die holding the leases — the max_executions-style
        # kill for the work-stealing layer.
        crash_after_claims = int(
            os.environ.get("REPRO_TEST_CRASH_AFTER_CLAIMS", "0") or 0
        )
        claimed_total = 0

        def write_journal(force: bool = False) -> None:
            now = time.monotonic()
            if not force and now - last_journal[0] < self.journal_min_interval_s:
                return
            last_journal[0] = now
            self._write_journal(name, sweep_key, tasks, results)
            report.journal_writes += 1

        def block_dependents(root_id: str) -> None:
            stack = list(dependents.get(root_id, []))
            while stack:
                task = stack.pop()
                result = results[task.task_id]
                if result.status != "pending":
                    continue
                result.status = "blocked"
                result.blocked_on = root_id
                self._progress(f"[ blocked] {task.task_id} (on {root_id})")
                stack.extend(dependents.get(task.task_id, []))

        def settle(
            task: TaskSpec,
            status: str,
            seconds: float = 0.0,
            error: Optional[str] = None,
        ) -> None:
            result = results[task.task_id]
            result.status = status
            result.seconds = seconds
            result.error = error
            suffix = f" ({seconds:.2f}s)" if status == "executed" else ""
            self._progress(f"[{status:>8}] {task.task_id}{suffix}")
            if leases is not None and status in ("executed", "failed"):
                leases.release(task.key)
            if status in ("executed", "cached"):
                for dependent in dependents.get(task.task_id, []):
                    pending_deps = unsettled[dependent.task_id]
                    pending_deps.discard(task.task_id)
                    if not pending_deps and results[dependent.task_id].status == "pending":
                        ready.append(dependent)
            elif status == "failed":
                block_dependents(task.task_id)

        try:
            write_journal(force=True)  # mid-sweep `repro report` sees us now
            while ready or in_flight or remote:
                # -- schedule: drain the ready queue -----------------------
                runnable: List[TaskSpec] = []
                while ready:
                    task = ready.popleft()
                    if results[task.task_id].status != "pending":
                        continue
                    if not recompute and self.store.contains(task.key):
                        settle(task, "cached")
                        continue
                    if (
                        max_executions is not None
                        and executions + len(runnable) >= max_executions
                    ):
                        deferred.append(task)
                        continue
                    runnable.append(task)
                if leases is not None and runnable:
                    if len(in_flight) >= 2 * self.n_workers:
                        # Pool already saturated: claiming more now would
                        # hoard leases other joiners could be draining.
                        ready.extend(runnable)
                        runnable = []
                    else:
                        # Claim one pack per round, requeue the rest: the
                        # share left in `ready` is what a second joiner
                        # steals its next batch from.
                        batches = pack_claims(
                            runnable, self._pack_size(len(runnable))
                        )
                        for batch in batches[1:]:
                            ready.extend(batch)
                        claimed: List[TaskSpec] = []
                        for task in batches[0]:
                            if leases.try_claim(task.key, task.task_id):
                                claimed.append(task)
                            else:
                                remote[task.task_id] = task
                        runnable = claimed
                        claimed_total += len(claimed)
                        if crash_after_claims and claimed_total >= crash_after_claims:
                            report.interrupted = True
                            break
                executions += len(runnable)
                if pool is not None:
                    for task in runnable:
                        payload = (
                            task.kind,
                            merged_params(task.kind, task.params),
                            self.store.spec_string(),
                            task.key,
                        )
                        in_flight[pool.submit(_execute_remote, payload)] = task
                else:
                    for task in runnable:
                        self._execute_inline(task, settle)
                # -- wait: settle pooled futures by completion order -------
                if in_flight:
                    completed, _ = wait(
                        list(in_flight),
                        timeout=self.poll_interval_s if remote else None,
                        return_when=FIRST_COMPLETED,
                    )
                    for future in completed:
                        task = in_flight.pop(future)
                        try:
                            status, _key, seconds, error = future.result()
                        except KeyboardInterrupt:
                            raise
                        except Exception as exc:  # noqa: BLE001 - broken pool etc.
                            status, seconds, error = (
                                "failed",
                                0.0,
                                f"{type(exc).__name__}: {exc}",
                            )
                        settle(task, status, seconds=seconds, error=error)
                elif remote:
                    time.sleep(self.poll_interval_s)
                # -- tasks leased elsewhere: poll store, re-lease expired --
                if remote:
                    for task_id, task in list(remote.items()):
                        if self.store.contains(task.key):
                            del remote[task_id]
                            settle(task, "cached")
                        elif leases is not None and leases.is_expired(task.key):
                            # The owner died (or released without a record):
                            # back to ready for a fresh claim attempt.
                            del remote[task_id]
                            ready.append(task)
                write_journal()
        except KeyboardInterrupt:
            report.interrupted = True
        finally:
            if pool is not None:
                # On interrupt, drop everything still queued — a Ctrl-C must
                # not block on a queue's worth of unstarted tasks.  The store
                # already holds every completed result, so the next run
                # resumes exactly where this one stopped.
                pool.shutdown(cancel_futures=report.interrupted)
            if leases is not None:
                leases.close()
            write_journal(force=True)
            self.store.flush_session_stats()
        return report

    # ------------------------------------------------------------------

    def _pack_size(self, n_candidates: int) -> int:
        """Tasks per claim batch (one batch is claimed per scheduling round):
        enough to keep every pool worker fed, never more than a fair share of
        the remaining work, so a joiner arriving late still finds tasks."""
        if self.lease_pack is not None:
            return max(1, int(self.lease_pack))
        fair = max(1, n_candidates // 2)
        return max(self.n_workers, min(2 * self.n_workers, fair))

    def _expand(self, spec) -> List[TaskSpec]:
        if isinstance(spec, SweepSpec):
            return expand_sweep(spec)
        spec = list(spec)
        if spec and isinstance(spec[0], SweepSpec):
            return expand_sweep(spec)
        return spec

    def _execute_inline(self, task: TaskSpec, settle) -> None:
        start = time.perf_counter()
        try:
            meta, arrays = run_task(task.kind, task.params, self.store)
        except KeyboardInterrupt:
            raise
        except Exception as exc:  # noqa: BLE001 - a task failure must not kill the sweep
            settle(task, "failed", error=f"{type(exc).__name__}: {exc}")
            return
        self.store.put(task.key, meta, arrays)
        settle(task, "executed", seconds=time.perf_counter() - start)

    # ------------------------------------------------------------------

    def _journal_path(self, name: str, sweep_key: str) -> Path:
        safe_name = "".join(c if c.isalnum() or c in "-_." else "_" for c in name)
        suffix = ""
        if self.join:
            # Joining workers each keep their own journal (same sweep_key);
            # `repro report` merges them by key.  A shared file would be a
            # last-writer-wins race between workers.
            safe_worker = "".join(
                c if c.isalnum() or c in "-_." else "_" for c in self.worker_id
            )
            suffix = f"-{safe_worker}"
        return self.store.sweeps_dir / f"{safe_name}-{sweep_key[:12]}{suffix}.json"

    def _write_journal(
        self,
        name: str,
        sweep_key: str,
        tasks: List[TaskSpec],
        results: Dict[str, TaskResult],
    ) -> None:
        """Checkpoint the sweep's status under ``<store>/sweeps/``.

        The journal is bookkeeping for ``repro report`` — resumption itself
        never reads it (the store's keys are the source of truth), so a lost
        or stale journal can not corrupt a sweep.
        """
        payload = {
            "name": name,
            "sweep_key": sweep_key,
            "worker": self.worker_id,
            "updated_at": time.time(),
            "tasks": {
                t.task_id: {
                    "kind": t.kind,
                    "key": t.key,
                    "status": results[t.task_id].status,
                    "seconds": results[t.task_id].seconds,
                    "error": results[t.task_id].error,
                    "blocked_on": results[t.task_id].blocked_on,
                }
                for t in tasks
            },
        }
        self.store._atomic_write(
            self._journal_path(name, sweep_key),
            json.dumps(payload, sort_keys=True, indent=1).encode("utf-8"),
        )
