"""Decoy circuits: Clifford (CDC), Seeded (SDC) and trivial decoys.

ADAPT cannot score DD combinations on the input program directly because the
program's correct output is unknown.  Instead it builds a *decoy circuit* that
(1) preserves the program's CNOT structure — and therefore its schedule, idle
windows and crosstalk exposure — and (2) is efficiently simulable so its ideal
output is known (Section 4.2).

Three constructions are provided:

* **CDC** — every non-Clifford gate is replaced by its closest Clifford under
  the operator norm (Equation 1); simulable on the stabilizer engine.
* **SDC** — like the CDC, but the first non-Clifford gate encountered on each
  of a few "seed" qubits is kept.  The handful of non-Clifford seeds keeps the
  output distribution low-entropy (and therefore sensitive to idling errors)
  while remaining cheap to simulate (Section 4.2.3).
* **trivial** — single-qubit gates dropped entirely, CNOT skeleton only
  (Figure 10(b)); used as a baseline in the decoy-quality ablation.

Because replacement gates keep the same qubit and (for diagonal rotations) the
same zero duration, the decoy's Gate Sequence Table is essentially identical
to the input program's, which is what makes the fidelity trends transfer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate, closest_clifford
from ..metrics.fidelity import normalized_entropy
from ..simulators.extended_stabilizer import ExtendedStabilizerSimulator

__all__ = ["DecoyCircuit", "clifford_decoy", "seeded_decoy", "trivial_decoy", "make_decoy"]


@dataclass
class DecoyCircuit:
    """A decoy plus its precomputed ideal output distribution."""

    kind: str
    circuit: QuantumCircuit
    source: QuantumCircuit
    num_non_clifford: int

    _ideal: Optional[Dict[tuple, Dict[str, float]]] = None
    _simulator: Optional[ExtendedStabilizerSimulator] = None

    def ideal_distribution(self, output_qubits) -> Dict[str, float]:
        """Noise-free output distribution over ``output_qubits``.

        The decoy only needs to be simulated once: DD insertion does not
        change the ideal output (the pulses compose to identity), so the same
        distribution is reused for every DD combination during the search.
        """
        key = tuple(output_qubits)
        if self._ideal is None:
            self._ideal = {}
        cached = self._ideal.get(key)
        if cached is not None:
            return cached
        simulator = self._simulator or ExtendedStabilizerSimulator()
        compacted, used = self.circuit.compact()
        raw = simulator.probabilities(compacted)
        position = {qubit: index for index, qubit in enumerate(used)}
        distribution: Dict[str, float] = {}
        for bits, probability in raw.items():
            out_bits = "".join(
                bits[position[q]] if q in position else "0" for q in key
            )
            distribution[out_bits] = distribution.get(out_bits, 0.0) + probability
        self._ideal[key] = distribution
        return distribution

    def output_entropy(self, output_qubits) -> float:
        """Normalised Shannon entropy of the decoy's ideal output."""
        distribution = self.ideal_distribution(output_qubits)
        return normalized_entropy(distribution, len(tuple(output_qubits)))

    def preserves_structure(self) -> bool:
        """True if the decoy kept the source's two-qubit gate structure.

        The ordered sequence of two-qubit gate qubit pairs must be identical;
        positions may shift for the trivial decoy (which drops single-qubit
        gates) but the CNOT pattern — and therefore the crosstalk exposure —
        must be preserved (paper Insight #2).
        """
        decoy_pairs = [pair for _, pair in self.circuit.two_qubit_structure()]
        source_pairs = [pair for _, pair in self.source.two_qubit_structure()]
        return decoy_pairs == source_pairs


def _replace_with_clifford(gate: Gate) -> Gate:
    replacement = closest_clifford(gate.name, gate.params)
    return Gate(name=replacement, qubits=gate.qubits, label=gate.label)


def clifford_decoy(circuit: QuantumCircuit) -> DecoyCircuit:
    """Clifford Decoy Circuit: every non-Clifford gate replaced (Section 4.2.1)."""

    def transform(gate: Gate):
        if not gate.is_unitary or gate.is_clifford or gate.num_qubits != 1:
            yield gate
        else:
            yield _replace_with_clifford(gate)

    decoy = circuit.map_gates(transform)
    decoy.name = f"{circuit.name}-cdc"
    return DecoyCircuit(
        kind="cdc", circuit=decoy, source=circuit, num_non_clifford=0
    )


def seeded_decoy(
    circuit: QuantumCircuit,
    max_seed_qubits: int = 4,
    seeds_per_qubit: int = 1,
) -> DecoyCircuit:
    """Seeded Decoy Circuit: a few non-Clifford seed gates survive (Section 4.2.3).

    Args:
        max_seed_qubits: number of distinct qubits allowed to keep seeds.
        seeds_per_qubit: non-Clifford gates kept per seed qubit (counted from
            the start of the circuit, i.e. the "initial layer").
    """
    kept_per_qubit: Dict[int, int] = {}
    seed_qubits: list = []
    decoy = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}-sdc")
    num_kept = 0
    for gate in circuit:
        if not gate.is_unitary or gate.is_clifford or gate.num_qubits != 1:
            decoy.append(gate)
            continue
        qubit = gate.qubits[0]
        if qubit not in seed_qubits and len(seed_qubits) < max_seed_qubits:
            seed_qubits.append(qubit)
        if qubit in seed_qubits and kept_per_qubit.get(qubit, 0) < seeds_per_qubit:
            kept_per_qubit[qubit] = kept_per_qubit.get(qubit, 0) + 1
            num_kept += 1
            decoy.append(gate)
        else:
            decoy.append(_replace_with_clifford(gate))
    return DecoyCircuit(
        kind="sdc", circuit=decoy, source=circuit, num_non_clifford=num_kept
    )


def trivial_decoy(circuit: QuantumCircuit) -> DecoyCircuit:
    """CNOT-skeleton decoy: all single-qubit unitaries removed (Figure 10(b))."""

    def transform(gate: Gate):
        if gate.is_unitary and gate.num_qubits == 1:
            return
        yield gate

    decoy = circuit.map_gates(transform)
    decoy.name = f"{circuit.name}-trivial"
    return DecoyCircuit(
        kind="trivial", circuit=decoy, source=circuit, num_non_clifford=0
    )


def make_decoy(circuit: QuantumCircuit, kind: str = "sdc", **kwargs) -> DecoyCircuit:
    """Factory over the three decoy constructions (``"cdc"``, ``"sdc"``, ``"trivial"``)."""
    kind = kind.lower()
    if kind == "cdc":
        return clifford_decoy(circuit)
    if kind == "sdc":
        return seeded_decoy(circuit, **kwargs)
    if kind == "trivial":
        return trivial_decoy(circuit)
    raise ValueError(f"unknown decoy kind '{kind}' (expected cdc, sdc or trivial)")
