"""Search over DD qubit combinations.

The space of DD combinations is 2^N for an N-qubit program (Section 4.3).
Two strategies are provided:

* :class:`ExhaustiveSearch` — scores every combination; tractable only for
  small programs, used by the Figure 8 study and by the Runtime-Best oracle.
* :class:`LocalizedSearch` — ADAPT's divide-and-conquer: qubits are split into
  neighbourhoods of (by default) four, each neighbourhood is searched
  exhaustively (16 combinations) while previously fixed neighbourhoods keep
  their selection, and the per-neighbourhood choice is the conservative union
  of the two best-scoring combinations.  Total cost is at most ``4 * N`` decoy
  evaluations — linear in the number of qubits.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..dd.insertion import DDAssignment

__all__ = [
    "ScoredAssignment",
    "SearchResult",
    "ExhaustiveSearch",
    "LocalizedSearch",
    "all_assignments",
    "score_assignments",
]

#: Callable scoring a DD assignment (higher is better, e.g. decoy fidelity).
#: A scorer may additionally expose ``score_many(assignments) -> List[float]``
#: to evaluate a whole candidate set as one batch — both search strategies
#: detect it and hand over entire neighbourhoods at once, so every candidate
#: of a neighbourhood executes against one cached
#: :class:`~repro.hardware.program.CompiledNoisyProgram` (the batched decoy
#: pipeline of :class:`repro.core.adapt.Adapt` relies on this; for Clifford
#: decoys the whole neighbourhood runs on the stabilizer fast path).
ScoreFunction = Callable[[DDAssignment], float]


def score_assignments(
    score: ScoreFunction, assignments: Sequence[DDAssignment]
) -> List[float]:
    """Score candidates via ``score.score_many`` when available, else one by one.

    Evaluation order is preserved either way, so scorers that derive
    per-evaluation seeds from a running counter produce identical results on
    both paths.
    """
    batch = getattr(score, "score_many", None)
    if batch is not None:
        values = list(batch(list(assignments)))
        if len(values) != len(assignments):
            raise ValueError(
                f"score_many returned {len(values)} scores for {len(assignments)} assignments"
            )
        return [float(v) for v in values]
    return [float(score(assignment)) for assignment in assignments]


@dataclass(frozen=True)
class ScoredAssignment:
    """One evaluated DD combination."""

    assignment: DDAssignment
    score: float
    bitstring: str


@dataclass
class SearchResult:
    """Outcome of a search: the selected assignment plus the full trace."""

    best: DDAssignment
    evaluations: List[ScoredAssignment] = field(default_factory=list)

    @property
    def num_evaluations(self) -> int:
        return len(self.evaluations)

    def ranked(self) -> List[ScoredAssignment]:
        return sorted(self.evaluations, key=lambda s: -s.score)

    def score_of(self, assignment: DDAssignment) -> Optional[float]:
        for scored in self.evaluations:
            if scored.assignment.qubits == assignment.qubits:
                return scored.score
        return None


def all_assignments(qubits: Sequence[int]) -> List[DDAssignment]:
    """Every subset of ``qubits`` as a DD assignment (2^N entries)."""
    qubits = list(qubits)
    assignments = []
    for bits in itertools.product("01", repeat=len(qubits)):
        assignments.append(DDAssignment.from_bitstring("".join(bits), qubits))
    return assignments


class ExhaustiveSearch:
    """Score all 2^N combinations over the given qubits."""

    def __init__(self, max_qubits: int = 12) -> None:
        self.max_qubits = int(max_qubits)

    def run(self, qubits: Sequence[int], score: ScoreFunction) -> SearchResult:
        qubits = list(qubits)
        if len(qubits) > self.max_qubits:
            raise ValueError(
                f"exhaustive search over {len(qubits)} qubits exceeds the"
                f" limit of {self.max_qubits} (use LocalizedSearch)"
            )
        candidates = all_assignments(qubits)
        values = score_assignments(score, candidates)
        evaluations = [
            ScoredAssignment(
                assignment=assignment,
                score=value,
                bitstring=assignment.to_bitstring(qubits),
            )
            for assignment, value in zip(candidates, values)
        ]
        best = max(evaluations, key=lambda s: s.score).assignment
        return SearchResult(best=best, evaluations=evaluations)


class LocalizedSearch:
    """ADAPT's linear-complexity neighbourhood search (Section 4.3)."""

    def __init__(
        self,
        group_size: int = 4,
        top_k_union: int = 2,
        group_by: str = "idle_time",
    ) -> None:
        if group_size < 1:
            raise ValueError("group_size must be at least 1")
        if top_k_union < 1:
            raise ValueError("top_k_union must be at least 1")
        if group_by not in ("idle_time", "index"):
            raise ValueError("group_by must be 'idle_time' or 'index'")
        self.group_size = int(group_size)
        self.top_k_union = int(top_k_union)
        self.group_by = group_by

    # ------------------------------------------------------------------

    def group_qubits(
        self, qubits: Sequence[int], idle_time: Optional[Dict[int, float]] = None
    ) -> List[List[int]]:
        """Partition qubits into neighbourhoods of ``group_size``.

        Neighbourhoods are formed in decreasing order of idle time (qubits
        with the most to gain from DD are decided first); ``group_by="index"``
        falls back to plain index order.
        """
        qubits = list(qubits)
        if self.group_by == "idle_time" and idle_time:
            ordered = sorted(qubits, key=lambda q: -idle_time.get(q, 0.0))
        else:
            ordered = sorted(qubits)
        return [
            ordered[i : i + self.group_size]
            for i in range(0, len(ordered), self.group_size)
        ]

    def run(
        self,
        qubits: Sequence[int],
        score: ScoreFunction,
        idle_time: Optional[Dict[int, float]] = None,
    ) -> SearchResult:
        """Run the localized search and return the selected assignment."""
        groups = self.group_qubits(qubits, idle_time)
        selected: set = set()
        evaluations: List[ScoredAssignment] = []
        all_qubits = list(qubits)

        for group in groups:
            # Build the whole neighbourhood first so a batch-capable scorer
            # evaluates its 2^group_size candidates as one shared-program batch.
            subsets: List[frozenset] = []
            candidates: List[DDAssignment] = []
            for bits in itertools.product("01", repeat=len(group)):
                group_subset = frozenset(
                    q for bit, q in zip(bits, group) if bit == "1"
                )
                subsets.append(group_subset)
                candidates.append(DDAssignment(frozenset(selected | group_subset)))
            values = score_assignments(score, candidates)
            group_scores: List[Tuple[float, frozenset]] = []
            for candidate, value, group_subset in zip(candidates, values, subsets):
                evaluations.append(
                    ScoredAssignment(
                        assignment=candidate,
                        score=value,
                        bitstring=candidate.to_bitstring(all_qubits),
                    )
                )
                group_scores.append((value, group_subset))
            # Conservative estimate: union of the top-k group choices
            # (Section 4.3's "1001" + "1011" -> "1011" example).
            group_scores.sort(key=lambda item: -item[0])
            union: set = set()
            for _, subset in group_scores[: self.top_k_union]:
                union |= set(subset)
            selected |= union

        best = DDAssignment(frozenset(selected))
        return SearchResult(best=best, evaluations=evaluations)

    def expected_evaluations(self, num_qubits: int) -> int:
        """Number of decoy evaluations the search will perform."""
        full_groups, remainder = divmod(num_qubits, self.group_size)
        count = full_groups * (2 ** self.group_size)
        if remainder:
            count += 2 ** remainder
        return count
