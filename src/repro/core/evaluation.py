"""Policy evaluation: run a benchmark under every DD policy and compare.

This is the machinery behind Figures 13-15 and Table 5: for one compiled
benchmark, each policy picks a DD assignment, the program is executed on the
noisy backend model with that assignment, and the TVD fidelity against the
program's noise-free output is recorded (absolute and relative to No-DD).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..dd.insertion import DDAssignment
from ..metrics.fidelity import fidelity, geometric_mean
from ..simulators.statevector import StatevectorSimulator
from .policies import Policy, PolicyDecision

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hardware.execution import NoisyExecutor
    from ..transpiler.transpile import CompiledProgram

__all__ = [
    "PolicyOutcome",
    "BenchmarkEvaluation",
    "logical_ideal_distribution",
    "compiled_ideal_distribution",
    "evaluate_policies",
    "summarize_relative_fidelity",
]


def logical_ideal_distribution(circuit: QuantumCircuit) -> Dict[str, float]:
    """Noise-free output distribution of a logical circuit (statevector)."""
    simulator = StatevectorSimulator()
    probabilities = simulator.probabilities(circuit)
    n = circuit.num_qubits
    return {
        format(index, f"0{n}b"): float(p)
        for index, p in enumerate(probabilities)
        if p > 1e-12
    }


def compiled_ideal_distribution(compiled: "CompiledProgram") -> Dict[str, float]:
    """Ideal distribution of a compiled program, in logical bit order.

    Equal to :func:`logical_ideal_distribution` of the source program when the
    transpiler is correct; computed from the physical circuit so the
    Runtime-Best oracle does not need the logical circuit at all.
    """
    compacted, used = compiled.physical_circuit.compact()
    simulator = StatevectorSimulator()
    probabilities = simulator.probabilities(compacted)
    position = {qubit: index for index, qubit in enumerate(used)}
    n = compacted.num_qubits
    distribution: Dict[str, float] = {}
    for index, p in enumerate(probabilities):
        if p <= 1e-12:
            continue
        bits = format(index, f"0{n}b")
        out = "".join(bits[position[q]] for q in compiled.output_qubits)
        distribution[out] = distribution.get(out, 0.0) + float(p)
    return distribution


@dataclass
class PolicyOutcome:
    """Result of running one policy on one benchmark."""

    policy: str
    assignment: DDAssignment
    fidelity: float
    relative_fidelity: float
    dd_pulse_count: int
    num_evaluations: int
    metadata: Dict[str, object] = field(default_factory=dict)


@dataclass
class BenchmarkEvaluation:
    """All policy outcomes for one benchmark on one backend."""

    benchmark: str
    backend: str
    dd_sequence: str
    baseline_fidelity: float
    outcomes: Dict[str, PolicyOutcome] = field(default_factory=dict)

    def relative(self, policy: str) -> float:
        return self.outcomes[policy].relative_fidelity

    def best_policy(self) -> str:
        return max(self.outcomes.values(), key=lambda o: o.fidelity).policy

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "benchmark": self.benchmark,
            "backend": self.backend,
            "dd_sequence": self.dd_sequence,
            "baseline_fidelity": self.baseline_fidelity,
        }
        for name, outcome in self.outcomes.items():
            row[f"{name}_fidelity"] = outcome.fidelity
            row[f"{name}_relative"] = outcome.relative_fidelity
        return row


def evaluate_policies(
    compiled: "CompiledProgram",
    policies: Sequence[Policy],
    executor: "NoisyExecutor",
    dd_sequence: str = "xy4",
    shots: int = 4096,
    ideal: Optional[Dict[str, float]] = None,
    benchmark_name: Optional[str] = None,
    rng: Optional[np.random.Generator] = None,
) -> BenchmarkEvaluation:
    """Run every policy on a compiled benchmark and compare fidelities."""
    ideal = ideal or compiled_ideal_distribution(compiled)
    gst = compiled.gst
    evaluation = BenchmarkEvaluation(
        benchmark=benchmark_name or compiled.logical_circuit.name,
        backend=executor.backend.name,
        dd_sequence=dd_sequence,
        baseline_fidelity=0.0,
    )

    decisions: List[PolicyDecision] = [policy.decide(compiled) for policy in policies]
    baseline_fidelity: Optional[float] = None

    for decision in decisions:
        result = executor.run(
            compiled.physical_circuit,
            dd_assignment=decision.assignment,
            dd_sequence=dd_sequence,
            shots=shots,
            output_qubits=compiled.output_qubits,
            gst=gst,
            rng=rng,
        )
        value = fidelity(ideal, result.probabilities)
        if decision.policy == "no_dd":
            baseline_fidelity = value
        evaluation.outcomes[decision.policy] = PolicyOutcome(
            policy=decision.policy,
            assignment=decision.assignment,
            fidelity=value,
            relative_fidelity=0.0,
            dd_pulse_count=result.dd_pulse_count,
            num_evaluations=decision.num_evaluations,
            metadata=dict(decision.metadata),
        )

    if baseline_fidelity is None:
        baseline_fidelity = min(o.fidelity for o in evaluation.outcomes.values())
    baseline_fidelity = max(baseline_fidelity, 1e-6)
    evaluation.baseline_fidelity = baseline_fidelity
    for outcome in evaluation.outcomes.values():
        outcome.relative_fidelity = outcome.fidelity / baseline_fidelity
    return evaluation


def summarize_relative_fidelity(
    evaluations: Sequence[BenchmarkEvaluation], policy: str
) -> Dict[str, float]:
    """Min / geometric-mean / max of a policy's relative fidelity (Table 5)."""
    values = [e.relative(policy) for e in evaluations if policy in e.outcomes]
    if not values:
        raise ValueError(f"no evaluations contain policy '{policy}'")
    return {
        "min": float(min(values)),
        "gmean": geometric_mean(values),
        "max": float(max(values)),
    }
