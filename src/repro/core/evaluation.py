"""Policy evaluation: run a benchmark under every DD policy and compare.

This is the machinery behind Figures 13-15 and Table 5: for one compiled
benchmark, each policy picks a DD assignment, the program is executed on the
noisy backend model with that assignment, and the TVD fidelity against the
program's noise-free output is recorded (absolute and relative to No-DD).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..dd.insertion import DDAssignment
from ..metrics.fidelity import fidelity, geometric_mean
from ..simulators.statevector import StatevectorSimulator
from .adapt import evaluation_seed
from .policies import Policy, PolicyDecision

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hardware.batch import BatchExecutor
    from ..hardware.execution import NoisyExecutor
    from ..store.store import ExperimentStore
    from ..transpiler.transpile import CompiledProgram

__all__ = [
    "PolicyOutcome",
    "BenchmarkEvaluation",
    "logical_ideal_distribution",
    "compiled_ideal_distribution",
    "evaluate_policies",
    "summarize_relative_fidelity",
]


def logical_ideal_distribution(circuit: QuantumCircuit) -> Dict[str, float]:
    """Noise-free output distribution of a logical circuit (statevector)."""
    simulator = StatevectorSimulator()
    probabilities = simulator.probabilities(circuit)
    n = circuit.num_qubits
    return {
        format(index, f"0{n}b"): float(p)
        for index, p in enumerate(probabilities)
        if p > 1e-12
    }


#: Above this compacted width, Clifford-only programs switch from the dense
#: statevector to exact stabilizer-tableau enumeration (the pre-existing
#: numerics below the switch are preserved bit-for-bit — no pre-change
#: workload ever compacted past 16 qubits).
_IDEAL_TABLEAU_QUBIT_LIMIT = 16

#: Hard ceiling for the dense statevector path: 2^24 amplitudes (~270 MB).
#: Non-Clifford programs beyond it fail descriptively instead of exhausting
#: memory.
_IDEAL_DENSE_QUBIT_LIMIT = 24


def _clifford_ideal_outcomes(compacted: QuantumCircuit) -> Dict[str, float]:
    """Exact ideal outcomes of a Clifford circuit via the tableau.

    The support of a stabilizer state is an affine subspace; for the
    device-scale verification workloads (mirror circuits) it is a single
    point, so this is O(gates · n²) at any width.
    """
    from ..simulators.stabilizer import StabilizerSimulator

    return StabilizerSimulator().probabilities(compacted, max_outcomes=4096)


def compiled_ideal_distribution(compiled: "CompiledProgram") -> Dict[str, float]:
    """Ideal distribution of a compiled program, in logical bit order.

    Equal to :func:`logical_ideal_distribution` of the source program when the
    transpiler is correct; computed from the physical circuit so the
    Runtime-Best oracle does not need the logical circuit at all.  Tiered by
    compacted width: the dense statevector up to
    :data:`_IDEAL_TABLEAU_QUBIT_LIMIT` qubits (bit-identical to earlier
    revisions), exact stabilizer-tableau enumeration beyond that for
    Clifford-only programs (the mirror workloads of the scaling study, at any
    width), the dense statevector again for *non*-Clifford programs up to
    :data:`_IDEAL_DENSE_QUBIT_LIMIT` qubits (e.g. a routed ``QFT:18``), and a
    descriptive error past that instead of an out-of-memory crash.
    """
    from ..simulators.stabilizer import is_tableau_supported

    compacted, used = compiled.physical_circuit.compact()
    n = compacted.num_qubits
    position = {qubit: index for index, qubit in enumerate(used)}
    distribution: Dict[str, float] = {}
    if n > _IDEAL_TABLEAU_QUBIT_LIMIT:
        unsupported = sorted(
            {
                gate.name
                for gate in compacted
                if not (gate.is_measurement or gate.is_barrier or gate.is_delay)
                and not is_tableau_supported(gate)
            }
        )
        if not unsupported:
            for bits, p in _clifford_ideal_outcomes(compacted).items():
                out = "".join(bits[position[q]] for q in compiled.output_qubits)
                distribution[out] = distribution.get(out, 0.0) + float(p)
            return distribution
        if n > _IDEAL_DENSE_QUBIT_LIMIT:
            raise ValueError(
                f"cannot compute the ideal distribution of a {n}-qubit"
                f" non-Clifford program (gates {unsupported} have no tableau"
                " rule, and the dense statevector stops at"
                f" {_IDEAL_DENSE_QUBIT_LIMIT} qubits); only Clifford"
                " workloads scale further"
            )
    simulator = StatevectorSimulator()
    probabilities = simulator.probabilities(compacted)
    for index, p in enumerate(probabilities):
        if p <= 1e-12:
            continue
        bits = format(index, f"0{n}b")
        out = "".join(bits[position[q]] for q in compiled.output_qubits)
        distribution[out] = distribution.get(out, 0.0) + float(p)
    return distribution


@dataclass
class PolicyOutcome:
    """Result of running one policy on one benchmark."""

    policy: str
    assignment: DDAssignment
    fidelity: float
    relative_fidelity: float
    dd_pulse_count: int
    num_evaluations: int
    metadata: Dict[str, object] = field(default_factory=dict)


@dataclass
class BenchmarkEvaluation:
    """All policy outcomes for one benchmark on one backend."""

    benchmark: str
    backend: str
    dd_sequence: str
    baseline_fidelity: float
    outcomes: Dict[str, PolicyOutcome] = field(default_factory=dict)

    def relative(self, policy: str) -> float:
        return self.outcomes[policy].relative_fidelity

    def best_policy(self) -> str:
        return max(self.outcomes.values(), key=lambda o: o.fidelity).policy

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "benchmark": self.benchmark,
            "backend": self.backend,
            "dd_sequence": self.dd_sequence,
            "baseline_fidelity": self.baseline_fidelity,
        }
        for name, outcome in self.outcomes.items():
            row[f"{name}_fidelity"] = outcome.fidelity
            row[f"{name}_relative"] = outcome.relative_fidelity
        return row


def _decide_one(args) -> PolicyDecision:
    policy, compiled = args
    return policy.decide(compiled)


def _policy_decisions(
    policies: Sequence[Policy], compiled: "CompiledProgram", n_workers: int
) -> List[PolicyDecision]:
    """Run every policy's selection, optionally fanned out over processes.

    Only the expensive selections (``Policy.expensive``: ADAPT, Runtime-Best)
    are shipped to workers; trivial decisions run inline.  Decisions are
    independent of each other, so the fan-out preserves results exactly
    (policies derive their randomness from their own seeds).  Falls back to
    the sequential loop when multiprocessing is unavailable.
    """
    expensive = [i for i, p in enumerate(policies) if getattr(p, "expensive", False)]
    if n_workers <= 1 or len(expensive) <= 1:
        return [policy.decide(compiled) for policy in policies]
    from ..hardware.batch import create_worker_pool  # avoid circular import

    pool = create_worker_pool(n_workers)
    if pool is None:  # pragma: no cover - non-POSIX platforms
        return [policy.decide(compiled) for policy in policies]
    with pool:
        payloads = [(policies[i], compiled) for i in expensive]
        fanned = pool.map(_decide_one, payloads)
        decisions: List[Optional[PolicyDecision]] = [None] * len(policies)
        for i, decision in zip(expensive, fanned):
            decisions[i] = decision
        for i, policy in enumerate(policies):
            if decisions[i] is None:
                decisions[i] = policy.decide(compiled)
        return decisions  # type: ignore[return-value]


def evaluate_policies(
    compiled: "CompiledProgram",
    policies: Sequence[Policy],
    executor: "NoisyExecutor",
    dd_sequence: str = "xy4",
    shots: int = 4096,
    ideal: Optional[Dict[str, float]] = None,
    benchmark_name: Optional[str] = None,
    rng: Optional[np.random.Generator] = None,
    n_workers: int = 1,
    batch_executor: Optional["BatchExecutor"] = None,
    seed: Optional[int] = None,
    engine: str = "auto_dense",
    store: Optional["ExperimentStore"] = None,
    store_key: Optional[str] = None,
) -> BenchmarkEvaluation:
    """Run every policy on a compiled benchmark and compare fidelities.

    Args:
        n_workers: fan policy decisions (the expensive ADAPT / Runtime-Best
            selections) out over this many worker processes.
        batch_executor: submit the final per-policy program executions as one
            shared-program batch instead of one ``executor.run`` per policy.
        seed: with ``batch_executor``, gives each final execution its own
            deterministic per-policy stream.
        engine: execution engine for the final per-policy runs.  These are
            the *measured* fidelities of the evaluation, so the default
            ``"auto_dense"`` keeps them on the exact dense engines even for
            Clifford benchmarks; decoy scoring inside the policies is where
            the stabilizer fast path applies.
        store: optional :class:`~repro.store.store.ExperimentStore`.  With a
            ``store_key`` (build one with
            :func:`repro.store.keys.evaluation_key`; the default when omitted)
            the evaluation becomes read-through/write-through: a stored
            result is returned without executing anything, otherwise the
            computed result is persisted under the key.  Only sound when the
            run is deterministic — freshly constructed, explicitly seeded
            policies and an explicit ``seed`` — which is what
            :func:`repro.analysis.evaluation_runs.run_policy_comparison`
            guarantees.
    """
    if store is not None:
        from ..store import evaluation_key
        from ..store.records import decode_evaluation, encode_evaluation

        if store_key is None:
            # The final executions run on batch_executor when given, else on
            # the sequential executor — and their trajectory budget,
            # dm_qubit_limit and memory budget determine the result (engine
            # resolution, MC sampling), so they must be part of the key.
            runner = batch_executor if batch_executor is not None else executor
            store_key = evaluation_key(
                compiled,
                executor.backend,
                policies=[policy.describe() for policy in policies],
                dd_sequence=dd_sequence,
                shots=shots,
                seed=seed,
                engine=engine,
                extra={
                    "trajectories": getattr(runner, "trajectories", None),
                    "dm_qubit_limit": getattr(runner, "dm_qubit_limit", None),
                    "memory_budget_bytes": getattr(
                        runner, "memory_budget_bytes", None
                    ),
                },
            )
        record = store.get(store_key)
        if record is not None:
            return decode_evaluation(record.meta)

    ideal = ideal or compiled_ideal_distribution(compiled)
    gst = compiled.gst
    evaluation = BenchmarkEvaluation(
        benchmark=benchmark_name or compiled.logical_circuit.name,
        backend=executor.backend.name,
        dd_sequence=dd_sequence,
        baseline_fidelity=0.0,
    )

    decisions = _policy_decisions(policies, compiled, n_workers)
    baseline_fidelity: Optional[float] = None

    if batch_executor is not None:
        if seed is not None:
            seeds = [evaluation_seed(seed, i, domain=2) for i in range(len(decisions))]
        elif rng is not None:
            # Preserve the legacy contract: a caller-supplied rng still
            # determines the final executions on the batched path.
            seeds = [int(rng.integers(0, 2 ** 63)) for _ in decisions]
        else:
            # Mirror the unbatched branch, which falls back to the executor's
            # own stream — a seeded NoisyExecutor stays reproducible even
            # when the caller omits seed/rng on the batched path.
            fallback = getattr(executor, "_rng", None)
            seeds = (
                [int(fallback.integers(0, 2 ** 63)) for _ in decisions]
                if fallback is not None
                else None
            )
        results = batch_executor.run_assignments(
            compiled.physical_circuit,
            [decision.assignment for decision in decisions],
            dd_sequence=dd_sequence,
            shots=shots,
            output_qubits=compiled.output_qubits,
            gst=gst,
            seeds=seeds,
            engine=engine,
        )
    else:
        results = [
            executor.run(
                compiled.physical_circuit,
                dd_assignment=decision.assignment,
                dd_sequence=dd_sequence,
                shots=shots,
                output_qubits=compiled.output_qubits,
                gst=gst,
                engine=engine,
                rng=rng,
            )
            for decision in decisions
        ]

    for decision, result in zip(decisions, results):
        value = fidelity(ideal, result.probabilities)
        if decision.policy == "no_dd":
            baseline_fidelity = value
        evaluation.outcomes[decision.policy] = PolicyOutcome(
            policy=decision.policy,
            assignment=decision.assignment,
            fidelity=value,
            relative_fidelity=0.0,
            dd_pulse_count=result.dd_pulse_count,
            num_evaluations=decision.num_evaluations,
            metadata=dict(decision.metadata),
        )

    if baseline_fidelity is None:
        baseline_fidelity = min(o.fidelity for o in evaluation.outcomes.values())
    baseline_fidelity = max(baseline_fidelity, 1e-6)
    evaluation.baseline_fidelity = baseline_fidelity
    for outcome in evaluation.outcomes.values():
        outcome.relative_fidelity = outcome.fidelity / baseline_fidelity
    if store is not None and store_key is not None:
        meta, arrays = encode_evaluation(evaluation)
        store.put(store_key, meta, arrays)
    return evaluation


def summarize_relative_fidelity(
    evaluations: Sequence[BenchmarkEvaluation], policy: str
) -> Dict[str, float]:
    """Min / geometric-mean / max of a policy's relative fidelity (Table 5)."""
    values = [e.relative(policy) for e in evaluations if policy in e.outcomes]
    if not values:
        raise ValueError(f"no evaluations contain policy '{policy}'")
    return {
        "min": float(min(values)),
        "gmean": geometric_mean(values),
        "max": float(max(values)),
    }
