"""The four competing DD policies of the evaluation (Section 5.6).

* **No-DD** — the baseline: no idle window is protected.
* **All-DD** — DD on every program qubit during every eligible idle window
  (the indiscriminate policy the paper shows to be sub-optimal).
* **ADAPT** — the decoy-driven localized search of :class:`~repro.core.adapt.Adapt`.
* **Runtime-Best** — an oracle that evaluates DD combinations on the *actual*
  program (with its true ideal output) and keeps the best one.  The paper runs
  all 2^N combinations; for larger programs this implementation caps the
  budget and samples combinations uniformly (always including none and all),
  which is documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..dd.insertion import DDAssignment
from ..metrics.fidelity import fidelity
from .adapt import Adapt, AdaptConfig, evaluation_seed
from .search import all_assignments

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hardware.batch import BatchExecutor
    from ..hardware.execution import NoisyExecutor
    from ..transpiler.transpile import CompiledProgram

__all__ = [
    "PolicyDecision",
    "Policy",
    "NoDDPolicy",
    "AllDDPolicy",
    "AdaptPolicy",
    "RuntimeBestPolicy",
    "standard_policies",
]


@dataclass
class PolicyDecision:
    """A policy's output: the DD assignment plus bookkeeping."""

    policy: str
    assignment: DDAssignment
    num_evaluations: int = 0
    metadata: Dict[str, object] = None

    def __post_init__(self) -> None:
        if self.metadata is None:
            self.metadata = {}


class Policy:
    """Base class: a policy maps a compiled program to a DD assignment."""

    name = "base"
    #: True for policies whose decide() runs circuit executions (worth
    #: fanning out over worker processes); trivial policies stay inline.
    expensive = False

    def decide(self, compiled: "CompiledProgram") -> PolicyDecision:
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        """JSON-safe description of everything that determines ``decide``.

        Folded into experiment-store keys
        (:func:`repro.store.keys.evaluation_key`), so two evaluations share a
        key only when every policy would decide identically.
        """
        return {"policy": self.name}


class NoDDPolicy(Policy):
    """Baseline: never apply DD."""

    name = "no_dd"

    def decide(self, compiled: "CompiledProgram") -> PolicyDecision:
        return PolicyDecision(policy=self.name, assignment=DDAssignment.none())


class AllDDPolicy(Policy):
    """Apply DD to every program qubit whenever it idles."""

    name = "all_dd"

    def decide(self, compiled: "CompiledProgram") -> PolicyDecision:
        qubits = compiled.gst.active_qubits()
        return PolicyDecision(policy=self.name, assignment=DDAssignment.all(qubits))


class AdaptPolicy(Policy):
    """The paper's contribution: decoy-driven localized selection."""

    name = "adapt"
    expensive = True

    def __init__(
        self,
        executor: "NoisyExecutor",
        config: Optional[AdaptConfig] = None,
        seed: Optional[int] = None,
        batch_executor: Optional["BatchExecutor"] = None,
    ) -> None:
        self._adapt = Adapt(
            executor, config=config, seed=seed, batch_executor=batch_executor
        )

    def describe(self) -> Dict[str, object]:
        from dataclasses import asdict

        config = asdict(self._adapt.config)
        # Batching and worker fan-out do not change the selection (the
        # per-evaluation seed protocol guarantees it), so they stay out of
        # the key — a laptop run and a 32-worker run share their cache.
        config.pop("use_batch", None)
        config.pop("n_workers", None)
        return {"policy": self.name, "seed": self._adapt._base_seed, **config}

    def decide(self, compiled: "CompiledProgram") -> PolicyDecision:
        result = self._adapt.select(compiled)
        return PolicyDecision(
            policy=self.name,
            assignment=result.assignment,
            num_evaluations=result.num_decoy_evaluations,
            metadata={
                "bitstring": result.bitstring,
                "decoy_kind": result.decoy.kind,
            },
        )


class RuntimeBestPolicy(Policy):
    """Oracle: score combinations on the real program's true output."""

    name = "runtime_best"
    expensive = True

    def __init__(
        self,
        executor: "NoisyExecutor",
        ideal_distribution: Callable[["CompiledProgram"], Dict[str, float]],
        dd_sequence: str = "xy4",
        shots: int = 2048,
        max_exhaustive_qubits: int = 6,
        max_evaluations: int = 64,
        seed: Optional[int] = None,
        batch_executor: Optional["BatchExecutor"] = None,
        engine: str = "auto",
    ) -> None:
        self.executor = executor
        self.ideal_distribution = ideal_distribution
        self.dd_sequence = dd_sequence
        self.shots = shots
        self.max_exhaustive_qubits = int(max_exhaustive_qubits)
        self.max_evaluations = int(max_evaluations)
        self.batch_executor = batch_executor
        self.engine = engine
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def describe(self) -> Dict[str, object]:
        runner = self.batch_executor if self.batch_executor is not None else self.executor
        return {
            "policy": self.name,
            "dd_sequence": self.dd_sequence,
            "shots": self.shots,
            "max_exhaustive_qubits": self.max_exhaustive_qubits,
            "max_evaluations": self.max_evaluations,
            "seed": self._seed,
            "engine": self.engine,
            # Engine resolution and the trajectory engine's sampling depend
            # on these executor knobs, so they are result-determining.
            "trajectories": getattr(runner, "trajectories", None),
            "dm_qubit_limit": getattr(runner, "dm_qubit_limit", None),
            "memory_budget_bytes": getattr(runner, "memory_budget_bytes", None),
        }

    def _candidate_assignments(self, qubits: Sequence[int]) -> List[DDAssignment]:
        qubits = list(qubits)
        if len(qubits) <= self.max_exhaustive_qubits:
            return all_assignments(qubits)
        candidates = [DDAssignment.none(), DDAssignment.all(qubits)]
        seen = {frozenset(), frozenset(qubits)}
        budget = max(0, self.max_evaluations - len(candidates))
        while len(candidates) < budget + 2:
            mask = self._rng.integers(0, 2, size=len(qubits))
            subset = frozenset(q for q, bit in zip(qubits, mask) if bit)
            if subset in seen:
                continue
            seen.add(subset)
            candidates.append(DDAssignment(subset))
        return candidates

    def decide(self, compiled: "CompiledProgram") -> PolicyDecision:
        qubits = compiled.gst.active_qubits()
        ideal = self.ideal_distribution(compiled)
        gst = compiled.gst
        candidates = self._candidate_assignments(qubits)
        if self.batch_executor is not None:
            # All candidates share the program: submit them as one batch with
            # per-candidate seeds so the oracle is reproducible.
            seeds = None
            if self._seed is not None:
                seeds = [
                    evaluation_seed(self._seed, i, domain=1)
                    for i in range(len(candidates))
                ]
            results = self.batch_executor.run_assignments(
                compiled.physical_circuit,
                candidates,
                dd_sequence=self.dd_sequence,
                shots=self.shots,
                output_qubits=compiled.output_qubits,
                gst=gst,
                seeds=seeds,
                engine=self.engine,
            )
        else:
            results = [
                self.executor.run(
                    compiled.physical_circuit,
                    dd_assignment=assignment,
                    dd_sequence=self.dd_sequence,
                    shots=self.shots,
                    output_qubits=compiled.output_qubits,
                    gst=gst,
                    engine=self.engine,
                    rng=self._rng,
                )
                for assignment in candidates
            ]
        best_assignment = DDAssignment.none()
        best_score = -1.0
        for assignment, result in zip(candidates, results):
            score = fidelity(ideal, result.probabilities)
            if score > best_score:
                best_score = score
                best_assignment = assignment
        return PolicyDecision(
            policy=self.name,
            assignment=best_assignment,
            num_evaluations=len(candidates),
            metadata={"best_score": best_score},
        )


def standard_policies(
    executor: "NoisyExecutor",
    ideal_distribution: Callable[["CompiledProgram"], Dict[str, float]],
    dd_sequence: str = "xy4",
    adapt_config: Optional[AdaptConfig] = None,
    include_runtime_best: bool = True,
    seed: Optional[int] = None,
    batch_executor: Optional["BatchExecutor"] = None,
    engine: Optional[str] = None,
) -> List[Policy]:
    """The evaluation's four policies, in the paper's order.

    ``batch_executor`` is shared by ADAPT's decoy scoring and the
    Runtime-Best oracle, so all expensive policies reuse one compiled-program
    cache.  ``engine`` forces one execution engine for *both* scoring
    policies (ADAPT's decoys and the oracle sweep); the default keeps
    ``adapt_config``'s engine for ADAPT and ``"auto"`` for the oracle, so the
    two rank candidates under the registry's per-program policy.
    """
    config = adapt_config or AdaptConfig(dd_sequence=dd_sequence)
    if engine is not None:
        config = replace(config, engine=engine)
    policies: List[Policy] = [
        NoDDPolicy(),
        AllDDPolicy(),
        AdaptPolicy(executor, config=config, seed=seed, batch_executor=batch_executor),
    ]
    if include_runtime_best:
        policies.append(
            RuntimeBestPolicy(
                executor,
                ideal_distribution,
                dd_sequence=dd_sequence,
                seed=seed,
                batch_executor=batch_executor,
                engine=engine if engine is not None else "auto",
            )
        )
    return policies
