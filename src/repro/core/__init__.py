"""The paper's primary contribution: GST, decoys, search, policies, ADAPT."""

from .gst import DurationModel, GateSequenceTable, IdleWindow, ScheduledGate
from .decoy import DecoyCircuit, clifford_decoy, make_decoy, seeded_decoy, trivial_decoy
from .search import (
    ExhaustiveSearch,
    LocalizedSearch,
    ScoredAssignment,
    SearchResult,
    all_assignments,
)
from .adapt import Adapt, AdaptConfig, AdaptResult
from .policies import (
    AdaptPolicy,
    AllDDPolicy,
    NoDDPolicy,
    Policy,
    PolicyDecision,
    RuntimeBestPolicy,
    standard_policies,
)
from .evaluation import (
    BenchmarkEvaluation,
    PolicyOutcome,
    compiled_ideal_distribution,
    evaluate_policies,
    logical_ideal_distribution,
    summarize_relative_fidelity,
)

__all__ = [
    "Adapt",
    "AdaptConfig",
    "AdaptPolicy",
    "AdaptResult",
    "AllDDPolicy",
    "BenchmarkEvaluation",
    "DecoyCircuit",
    "DurationModel",
    "ExhaustiveSearch",
    "GateSequenceTable",
    "IdleWindow",
    "LocalizedSearch",
    "NoDDPolicy",
    "Policy",
    "PolicyDecision",
    "PolicyOutcome",
    "RuntimeBestPolicy",
    "ScheduledGate",
    "ScoredAssignment",
    "SearchResult",
    "all_assignments",
    "clifford_decoy",
    "compiled_ideal_distribution",
    "evaluate_policies",
    "logical_ideal_distribution",
    "make_decoy",
    "seeded_decoy",
    "standard_policies",
    "summarize_relative_fidelity",
    "trivial_decoy",
]
