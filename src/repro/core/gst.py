"""Gate Sequence Table (GST): the timing IR that exposes idle windows.

The paper (Section 4.4.2, Figure 11) converts the compiled executable into a
Gate Sequence Table that "slices the compiled circuit into layers and captures
the data dependencies between the qubits in time", using physical gate
latencies to timestamp the start and end of every gate.  Querying the GST
yields the exact idle period of any qubit, which is where DD sequences are
inserted.

This module provides:

* :class:`ScheduledGate` — a gate with absolute start/end times in ns;
* :class:`IdleWindow` — a per-qubit gap between two operations;
* :class:`GateSequenceTable` — ASAP/ALAP scheduling of a circuit given a gate
  duration model, idle-window extraction, concurrent-CNOT queries and a text
  rendering of the layer table shown in Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate

__all__ = ["ScheduledGate", "IdleWindow", "GateSequenceTable", "DurationModel"]

#: Callable mapping a gate to its duration in nanoseconds.
DurationModel = Callable[[Gate], float]


@dataclass(frozen=True)
class ScheduledGate:
    """A gate placed on the absolute time axis."""

    gate: Gate
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def qubits(self) -> Tuple[int, ...]:
        return self.gate.qubits

    @property
    def is_cnot(self) -> bool:
        return self.gate.is_two_qubit

    @property
    def link(self) -> Optional[Tuple[int, int]]:
        """Canonical (sorted) qubit pair for two-qubit gates, else ``None``."""
        if not self.gate.is_two_qubit:
            return None
        a, b = self.gate.qubits
        return (a, b) if a <= b else (b, a)

    def overlap(self, start: float, end: float) -> float:
        """Duration of the intersection with the interval ``[start, end]``."""
        return max(0.0, min(self.end, end) - max(self.start, start))


@dataclass(frozen=True)
class IdleWindow:
    """A period during which one qubit performs no operation."""

    qubit: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlap(self, start: float, end: float) -> float:
        return max(0.0, min(self.end, end) - max(self.start, start))


def _merge_spans(spans: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Sort ``(start, end)`` spans and merge overlapping/adjacent ones."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(spans):
        if merged and start <= merged[-1][1] + 1e-9:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


class GateSequenceTable:
    """Timestamped schedule of a compiled circuit.

    Args:
        circuit: the compiled circuit (already mapped to physical qubits).
        duration_model: callable giving each gate's latency in ns — typically
            :meth:`repro.hardware.backend.Backend.gate_duration`.
        method: ``"alap"`` (default, matching production compilers that
            schedule as late as possible to shorten idle windows) or ``"asap"``.
    """

    def __init__(
        self,
        circuit: QuantumCircuit,
        duration_model: DurationModel,
        method: str = "alap",
    ) -> None:
        if method not in ("asap", "alap"):
            raise ValueError("method must be 'asap' or 'alap'")
        self._circuit = circuit
        self._duration_model = duration_model
        self._method = method
        self._scheduled: List[ScheduledGate] = []
        self._cnot_index: Optional[Tuple[np.ndarray, ...]] = None
        self._schedule()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _schedule(self) -> None:
        durations = []
        gates = []
        for gate in self._circuit:
            if gate.is_barrier:
                gates.append(gate)
                durations.append(0.0)
                continue
            explicit = gate.duration
            durations.append(
                float(explicit) if explicit is not None else float(self._duration_model(gate))
            )
            gates.append(gate)

        if self._method == "asap":
            starts = self._asap_starts(gates, durations)
        else:
            starts = self._alap_starts(gates, durations)

        scheduled = []
        for index, (gate, start, duration) in enumerate(zip(gates, starts, durations)):
            if gate.is_barrier:
                continue
            scheduled.append((start, index, ScheduledGate(gate=gate, start=start, duration=duration)))
        # Ties on start time (zero-duration virtual RZ gates) must preserve the
        # original program order or same-qubit dependencies would be violated.
        scheduled.sort(key=lambda item: (item[0], item[1]))
        self._scheduled = [entry[2] for entry in scheduled]

    @staticmethod
    def _asap_starts(gates: Sequence[Gate], durations: Sequence[float]) -> List[float]:
        free: Dict[int, float] = {}
        starts: List[float] = []
        for gate, duration in zip(gates, durations):
            start = max((free.get(q, 0.0) for q in gate.qubits), default=0.0)
            starts.append(start)
            for q in gate.qubits:
                free[q] = start + duration
        return starts

    def _alap_starts(self, gates: Sequence[Gate], durations: Sequence[float]) -> List[float]:
        # Schedule the reversed circuit ASAP, then mirror the time axis.
        reversed_gates = list(reversed(gates))
        reversed_durations = list(reversed(durations))
        rev_starts = self._asap_starts(reversed_gates, reversed_durations)
        total = max(
            (s + d for s, d in zip(rev_starts, reversed_durations)), default=0.0
        )
        starts = [total - (s + d) for s, d in zip(rev_starts, reversed_durations)]
        return list(reversed(starts))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def circuit(self) -> QuantumCircuit:
        return self._circuit

    @property
    def method(self) -> str:
        return self._method

    @property
    def scheduled_gates(self) -> Tuple[ScheduledGate, ...]:
        return tuple(self._scheduled)

    @property
    def total_duration(self) -> float:
        """Program latency: end time of the last scheduled instruction."""
        return max((s.end for s in self._scheduled), default=0.0)

    def busy_intervals(self, qubit: int) -> List[Tuple[float, float]]:
        """Merged intervals during which a qubit performs an operation."""
        return _merge_spans(
            [(s.start, s.end) for s in self._scheduled if qubit in s.qubits]
        )

    def idle_windows(
        self, qubit: Optional[int] = None, min_duration: float = 0.0
    ) -> List[IdleWindow]:
        """Idle windows between a qubit's first and last operation.

        Leading idle time (before a qubit's first gate) is excluded: compilers
        initialise qubits as late as possible, and a qubit parked in |0> does
        not decohere, so DD there is pointless (Section 2.4's late
        initialisation discussion).

        The all-qubits form groups the schedule per qubit in a single pass —
        one per-qubit ``busy_intervals`` scan each would make device-scale
        compilation O(qubits × gates).
        """
        if qubit is not None:
            intervals_of = {qubit: self.busy_intervals(qubit)}
        else:
            spans: Dict[int, List[Tuple[float, float]]] = {}
            for s in self._scheduled:
                span = (s.start, s.end)
                for q in s.qubits:
                    spans.setdefault(q, []).append(span)
            intervals_of = {q: _merge_spans(spans[q]) for q in sorted(spans)}
        windows: List[IdleWindow] = []
        for q, intervals in intervals_of.items():
            for (a_start, a_end), (b_start, b_end) in zip(intervals, intervals[1:]):
                gap = b_start - a_end
                if gap > max(min_duration, 1e-9):
                    windows.append(IdleWindow(qubit=q, start=a_end, end=b_start))
        windows.sort(key=lambda w: (w.start, w.qubit))
        return windows

    def active_qubits(self) -> List[int]:
        """Qubits that appear in at least one scheduled instruction."""
        used = set()
        for s in self._scheduled:
            used.update(s.qubits)
        return sorted(used)

    def idle_fraction(self, qubit: int) -> float:
        """Fraction of the total program latency a qubit spends idle.

        Matches the "Idle Fraction" columns of Table 1: idle time between the
        qubit's first and last operation divided by the program latency.
        """
        total = self.total_duration
        if total <= 0:
            return 0.0
        idle = sum(w.duration for w in self.idle_windows(qubit))
        return idle / total

    def total_idle_time(self, qubit: Optional[int] = None) -> float:
        """Total idle nanoseconds, for one qubit or summed over all."""
        return sum(w.duration for w in self.idle_windows(qubit))

    def average_idle_time(self) -> float:
        """Average idle time per active qubit (the Table 4 column), in ns.

        Computed from one all-qubits ``idle_windows`` pass, accumulated per
        qubit in window-start order and summed over qubits in sorted order —
        the identical floating-point operations, in the identical order, as
        the per-qubit ``total_idle_time`` loop it replaces, without that
        loop's O(qubits × gates) rescan of the schedule.
        """
        qubits = self.active_qubits()
        if not qubits:
            return 0.0
        totals = {q: 0.0 for q in qubits}
        for window in self.idle_windows():
            totals[window.qubit] += window.duration
        return sum(totals[q] for q in qubits) / len(qubits)

    def concurrent_cnots(
        self, start: float, end: float, exclude_qubit: Optional[int] = None
    ) -> List[Tuple[Tuple[int, int], float]]:
        """CNOT links active during ``[start, end]`` and their overlap in ns.

        Used by the noise model to amplify a spectator qubit's idling errors
        while two-qubit gates run in its vicinity.

        Called once per idle window when a program is compiled, so a naive
        scan over every scheduled gate makes compilation O(windows × gates) —
        minutes at 255+ qubits.  Instead the CNOT subschedule is indexed once,
        sorted by start time; a query bisects to the only slice that can
        overlap ``[start, end]`` (a CNOT starting before ``start - max_dur``
        has necessarily ended, one starting at/after ``end`` has not begun)
        and evaluates just that slice.  The sort is stable, so iterating the
        slice preserves schedule order, which keeps the floating-point
        summation order — and therefore the exact result — of the original
        scan; CNOTs the slice bounds drop all have overlap ≤ 0 and never
        contributed.
        """
        if self._cnot_index is None:
            cnots = [s for s in self._scheduled if s.is_cnot]
            starts = np.array([s.start for s in cnots], dtype=float)
            order = np.argsort(starts, kind="stable")
            self._cnot_index = (
                starts[order],
                np.array([s.end for s in cnots], dtype=float)[order],
                np.array([s.qubits[0] for s in cnots], dtype=np.int64)[order],
                np.array([s.qubits[1] for s in cnots], dtype=np.int64)[order],
                [cnots[i].link for i in order],
                float(max((s.duration for s in cnots), default=0.0)),
            )
        starts, ends, qubit_a, qubit_b, links, max_duration = self._cnot_index
        if not len(links):
            return []
        lo = int(np.searchsorted(starts, start - max_duration, side="left"))
        hi = int(np.searchsorted(starts, end, side="left"))
        if lo >= hi:
            return []
        overlaps = np.minimum(ends[lo:hi], end) - np.maximum(starts[lo:hi], start)
        hits = overlaps > 1e-9
        if exclude_qubit is not None:
            hits &= (qubit_a[lo:hi] != exclude_qubit) & (qubit_b[lo:hi] != exclude_qubit)
        active: Dict[Tuple[int, int], float] = {}
        for i in np.nonzero(hits)[0]:
            link = links[lo + i]
            active[link] = active.get(link, 0.0) + float(overlaps[i])
        return sorted(active.items())

    def gates_on_qubit(self, qubit: int) -> List[ScheduledGate]:
        return [s for s in self._scheduled if qubit in s.qubits]

    # ------------------------------------------------------------------
    # Rendering (Figure 11 style)
    # ------------------------------------------------------------------

    def layers(self, resolution: float = 1e-9) -> List[Tuple[float, List[ScheduledGate]]]:
        """Group scheduled gates by identical start time."""
        grouped: Dict[float, List[ScheduledGate]] = {}
        for s in self._scheduled:
            key = round(s.start / max(resolution, 1e-12)) * resolution
            grouped.setdefault(key, []).append(s)
        return sorted(grouped.items())

    def render(self) -> str:
        """Human-readable table: one row per start time, one column per qubit."""
        qubits = self.active_qubits()
        header = "Layer | Time (ns) | " + " | ".join(f"Q{q}" for q in qubits)
        lines = [header, "-" * len(header)]
        for layer_index, (time, gates) in enumerate(self.layers(), start=1):
            cells = {q: "Idle" for q in qubits}
            for s in gates:
                text = s.gate.name.upper()
                for q in s.qubits:
                    cells[q] = text
            row = f"{layer_index:5d} | {time:9.1f} | " + " | ".join(
                cells[q] for q in qubits
            )
            lines.append(row)
        return "\n".join(lines)
