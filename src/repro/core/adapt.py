"""The ADAPT framework: decoy-driven selection of the DD qubit subset.

This is the paper's primary contribution (Section 4, Figure 7): given a
compiled program, ADAPT

1. builds a decoy circuit that preserves the program's CNOT structure but has
   an efficiently computable ideal output,
2. scores DD combinations by executing the decoy (on the noisy backend model)
   with each candidate combination and measuring the decoy's fidelity,
3. searches the combination space with a localized, linear-complexity
   algorithm, and
4. returns the selected combination, ready to be applied to the input program.

Decoy scoring is the hot path (up to ``4 * N`` executions of the same decoy
circuit), so the scorer hands whole neighbourhoods to a
:class:`~repro.hardware.batch.BatchExecutor`, which compiles the decoy once
into a :class:`~repro.hardware.program.CompiledNoisyProgram` (Gate Sequence
Table, event template, memoized idle-window noise) shared across the batch,
and can fan candidates out over worker processes (``AdaptConfig.n_workers``).
For Clifford decoys (``decoy_kind="cdc"``) the registry's ``"auto"`` policy
routes scoring through the stabilizer fast path — the paper's Insight #1
made executable.  Every decoy evaluation runs under its own seed derived
from the ADAPT seed and the evaluation index, so selections are bit-identical
across the batched path, the sequential fallback (``use_batch=False``) and
any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..dd.insertion import DDAssignment, DDPlan, materialize_dd_circuit, plan_dd
from ..metrics.fidelity import fidelity
from .decoy import DecoyCircuit, make_decoy
from .gst import GateSequenceTable
from .search import LocalizedSearch, SearchResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hardware.batch import BatchExecutor
    from ..hardware.execution import NoisyExecutor
    from ..transpiler.transpile import CompiledProgram

__all__ = ["AdaptConfig", "AdaptResult", "Adapt", "evaluation_seed"]


def evaluation_seed(base: int, index: int, domain: int = 0) -> int:
    """Deterministic per-evaluation seed from a base seed and eval index.

    ``domain`` separates consumers sharing one base seed (decoy scoring,
    the Runtime-Best oracle, final policy executions) so their streams are
    statistically independent — without it the oracle's candidate draws
    would collide with the final measurements they are compared against.
    """
    return int(
        np.random.SeedSequence([int(base), int(domain), int(index)]).generate_state(1)[0]
    )


@dataclass(frozen=True)
class AdaptConfig:
    """Tunable parameters of the ADAPT pass."""

    dd_sequence: str = "xy4"
    decoy_kind: str = "sdc"
    group_size: int = 4
    top_k_union: int = 2
    decoy_shots: int = 2048
    max_seed_qubits: int = 8
    min_idle_window_ns: Optional[float] = None
    #: Engine for decoy executions: ``"auto"`` (default) lets the registry
    #: pick — notably the stabilizer Clifford fast path for CDC decoys — or
    #: any registered engine name to force one.
    engine: str = "auto"
    #: Score whole neighbourhoods as one shared-program batch (recommended).
    use_batch: bool = True
    #: Worker processes for decoy scoring; 1 = in-process.  Results are
    #: independent of the worker count thanks to per-evaluation seeds.
    n_workers: int = 1


@dataclass
class AdaptResult:
    """Everything ADAPT produced for one program."""

    assignment: DDAssignment
    decoy: DecoyCircuit
    search: SearchResult
    program_qubits: tuple
    config: AdaptConfig

    @property
    def bitstring(self) -> str:
        return self.assignment.to_bitstring(self.program_qubits)

    @property
    def num_decoy_evaluations(self) -> int:
        return self.search.num_evaluations


class _DecoyScorer:
    """Scores DD candidates by decoy fidelity; batch- and worker-aware.

    Exposes both the plain callable protocol and ``score_many`` (detected by
    the search strategies).  Seeds are assigned by global evaluation index,
    so the batched, sequential and multi-process paths select identically.
    """

    def __init__(
        self,
        adapt: "Adapt",
        circuit: QuantumCircuit,
        ideal: Dict[str, float],
        gst: GateSequenceTable,
        output_qubits: Sequence[int],
    ) -> None:
        self._adapt = adapt
        self._circuit = circuit
        self._ideal = ideal
        self._gst = gst
        self._output_qubits = tuple(output_qubits)
        self._counter = 0

    def _next_seeds(self, count: int) -> List[int]:
        seeds = [
            evaluation_seed(self._adapt._base_seed, self._counter + i)
            for i in range(count)
        ]
        self._counter += count
        return seeds

    def __call__(self, assignment: DDAssignment) -> float:
        return self.score_many([assignment])[0]

    def score_many(self, assignments: Sequence[DDAssignment]) -> List[float]:
        config = self._adapt.config
        seeds = self._next_seeds(len(assignments))
        if not config.use_batch:
            results = [
                self._adapt.executor.run(
                    self._circuit,
                    dd_assignment=assignment,
                    dd_sequence=config.dd_sequence,
                    shots=config.decoy_shots,
                    output_qubits=self._output_qubits,
                    gst=self._gst,
                    engine=config.engine,
                    seed=seed,
                )
                for assignment, seed in zip(assignments, seeds)
            ]
        elif config.n_workers > 1 and len(assignments) > 1:
            from ..hardware.batch import BatchJob, run_jobs_in_processes

            jobs = [
                BatchJob(
                    dd_assignment=assignment,
                    dd_sequence=config.dd_sequence,
                    shots=config.decoy_shots,
                    seed=seed,
                    output_qubits=self._output_qubits,
                    engine=config.engine,
                )
                for assignment, seed in zip(assignments, seeds)
            ]
            results = run_jobs_in_processes(
                self._adapt.executor.backend,
                self._circuit,
                jobs,
                config.n_workers,
                gst=self._gst,
                executor_options=self._adapt._batch_options(),
                pool=self._adapt._worker_pool(),
            )
        else:
            results = self._adapt.batch_executor.run_assignments(
                self._circuit,
                list(assignments),
                dd_sequence=config.dd_sequence,
                shots=config.decoy_shots,
                output_qubits=self._output_qubits,
                gst=self._gst,
                seeds=seeds,
                engine=config.engine,
            )
        return [fidelity(self._ideal, result.probabilities) for result in results]


class Adapt:
    """Adaptive Dynamical Decoupling selection pass.

    Args:
        executor: a :class:`~repro.hardware.execution.NoisyExecutor` (or any
            object with the same ``run`` signature) used to execute decoys.
        config: search / decoy / batching options.
        seed: base seed for decoy scoring; every decoy evaluation derives its
            own stream from ``(seed, evaluation index)``.
        batch_executor: optional shared
            :class:`~repro.hardware.batch.BatchExecutor`; built on demand
            from the executor's backend when omitted.
    """

    def __init__(
        self,
        executor: "NoisyExecutor",
        config: Optional[AdaptConfig] = None,
        seed: Optional[int] = None,
        batch_executor: Optional["BatchExecutor"] = None,
    ) -> None:
        self.executor = executor
        self.config = config or AdaptConfig()
        if seed is None:
            seed = int(np.random.default_rng().integers(0, 2 ** 63))
        self._base_seed = int(seed)
        self._batch = batch_executor
        self._pool = None

    def _batch_options(self) -> Dict[str, object]:
        from ..hardware.execution import DEFAULT_MEMORY_BUDGET_BYTES

        return {
            "dm_qubit_limit": getattr(self.executor, "dm_qubit_limit", 10),
            "trajectories": getattr(self.executor, "trajectories", 120),
            # The memory budget steers engine selection, so the batched path
            # (and every fan-out worker) must inherit the parent's value.
            "memory_budget_bytes": getattr(
                self.executor, "memory_budget_bytes", DEFAULT_MEMORY_BUDGET_BYTES
            ),
        }

    @property
    def batch_executor(self) -> "BatchExecutor":
        """The shared batch executor (created lazily from the backend)."""
        if self._batch is None:
            from ..hardware.batch import BatchExecutor

            self._batch = BatchExecutor(
                self.executor.backend, **self._batch_options()
            )
        return self._batch

    def _worker_pool(self):
        """Persistent process pool reused across score_many calls."""
        if self._pool is None:
            from ..hardware.batch import create_worker_pool

            self._pool = create_worker_pool(self.config.n_workers)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (no-op when none was created)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __del__(self):  # pragma: no cover - interpreter-shutdown ordering
        try:
            self.close()
        except Exception:
            pass

    def __getstate__(self):
        # Process pools are not picklable; workers recreate their own.
        state = self.__dict__.copy()
        state["_pool"] = None
        return state

    # ------------------------------------------------------------------

    def select(self, compiled: "CompiledProgram") -> AdaptResult:
        """Pick the DD qubit subset for a compiled program."""
        physical = compiled.physical_circuit
        gst = compiled.gst
        program_qubits = tuple(sorted(gst.active_qubits()))
        output_qubits = compiled.output_qubits

        decoy = make_decoy(
            physical,
            kind=self.config.decoy_kind,
            **(
                {"max_seed_qubits": self.config.max_seed_qubits}
                if self.config.decoy_kind == "sdc"
                else {}
            ),
        )
        decoy_ideal = decoy.ideal_distribution(output_qubits)
        decoy_gst = self.executor.backend.schedule(decoy.circuit)

        score = _DecoyScorer(self, decoy.circuit, decoy_ideal, decoy_gst, output_qubits)

        idle_time = {q: gst.total_idle_time(q) for q in program_qubits}
        search = LocalizedSearch(
            group_size=self.config.group_size,
            top_k_union=self.config.top_k_union,
        ).run(program_qubits, score, idle_time=idle_time)

        return AdaptResult(
            assignment=search.best,
            decoy=decoy,
            search=search,
            program_qubits=program_qubits,
            config=self.config,
        )

    # ------------------------------------------------------------------

    def plan(self, compiled: "CompiledProgram", result: Optional[AdaptResult] = None) -> DDPlan:
        """Build the DD plan for the selected assignment."""
        result = result or self.select(compiled)
        return plan_dd(
            compiled.gst,
            result.assignment,
            self.config.dd_sequence,
            min_window_ns=self.config.min_idle_window_ns,
        )

    def apply(self, compiled: "CompiledProgram") -> QuantumCircuit:
        """Return the executable with DD pulses inserted (Figure 7, step 4)."""
        result = self.select(compiled)
        dd_plan = self.plan(compiled, result)
        return materialize_dd_circuit(compiled.gst, dd_plan)
