"""The ADAPT framework: decoy-driven selection of the DD qubit subset.

This is the paper's primary contribution (Section 4, Figure 7): given a
compiled program, ADAPT

1. builds a decoy circuit that preserves the program's CNOT structure but has
   an efficiently computable ideal output,
2. scores DD combinations by executing the decoy (on the noisy backend model)
   with each candidate combination and measuring the decoy's fidelity,
3. searches the combination space with a localized, linear-complexity
   algorithm, and
4. returns the selected combination, ready to be applied to the input program.

The executor is injected so the same class drives both the simulated backends
of this reproduction and, in principle, a real submission pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..dd.insertion import DDAssignment, DDPlan, materialize_dd_circuit, plan_dd
from ..metrics.fidelity import fidelity
from .decoy import DecoyCircuit, make_decoy
from .gst import GateSequenceTable
from .search import LocalizedSearch, SearchResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hardware.execution import NoisyExecutor
    from ..transpiler.transpile import CompiledProgram

__all__ = ["AdaptConfig", "AdaptResult", "Adapt"]


@dataclass(frozen=True)
class AdaptConfig:
    """Tunable parameters of the ADAPT pass."""

    dd_sequence: str = "xy4"
    decoy_kind: str = "sdc"
    group_size: int = 4
    top_k_union: int = 2
    decoy_shots: int = 2048
    max_seed_qubits: int = 8
    min_idle_window_ns: Optional[float] = None


@dataclass
class AdaptResult:
    """Everything ADAPT produced for one program."""

    assignment: DDAssignment
    decoy: DecoyCircuit
    search: SearchResult
    program_qubits: tuple
    config: AdaptConfig

    @property
    def bitstring(self) -> str:
        return self.assignment.to_bitstring(self.program_qubits)

    @property
    def num_decoy_evaluations(self) -> int:
        return self.search.num_evaluations


class Adapt:
    """Adaptive Dynamical Decoupling selection pass.

    Args:
        executor: a :class:`~repro.hardware.execution.NoisyExecutor` (or any
            object with the same ``run`` signature) used to execute decoys.
        config: search / decoy options.
        seed: seed for the executor RNG used during decoy scoring.
    """

    def __init__(
        self,
        executor: "NoisyExecutor",
        config: Optional[AdaptConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.executor = executor
        self.config = config or AdaptConfig()
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------

    def select(self, compiled: "CompiledProgram") -> AdaptResult:
        """Pick the DD qubit subset for a compiled program."""
        physical = compiled.physical_circuit
        gst = compiled.gst
        program_qubits = tuple(sorted(gst.active_qubits()))
        output_qubits = compiled.output_qubits

        decoy = make_decoy(
            physical,
            kind=self.config.decoy_kind,
            **(
                {"max_seed_qubits": self.config.max_seed_qubits}
                if self.config.decoy_kind == "sdc"
                else {}
            ),
        )
        decoy_ideal = decoy.ideal_distribution(output_qubits)
        decoy_gst = self.executor.backend.schedule(decoy.circuit)

        def score(assignment: DDAssignment) -> float:
            result = self.executor.run(
                decoy.circuit,
                dd_assignment=assignment,
                dd_sequence=self.config.dd_sequence,
                shots=self.config.decoy_shots,
                output_qubits=output_qubits,
                gst=decoy_gst,
                rng=self._rng,
            )
            return fidelity(decoy_ideal, result.probabilities)

        idle_time = {q: gst.total_idle_time(q) for q in program_qubits}
        search = LocalizedSearch(
            group_size=self.config.group_size,
            top_k_union=self.config.top_k_union,
        ).run(program_qubits, score, idle_time=idle_time)

        return AdaptResult(
            assignment=search.best,
            decoy=decoy,
            search=search,
            program_qubits=program_qubits,
            config=self.config,
        )

    # ------------------------------------------------------------------

    def plan(self, compiled: "CompiledProgram", result: Optional[AdaptResult] = None) -> DDPlan:
        """Build the DD plan for the selected assignment."""
        result = result or self.select(compiled)
        return plan_dd(
            compiled.gst,
            result.assignment,
            self.config.dd_sequence,
            min_window_ns=self.config.min_idle_window_ns,
        )

    def apply(self, compiled: "CompiledProgram") -> QuantumCircuit:
        """Return the executable with DD pulses inserted (Figure 7, step 4)."""
        result = self.select(compiled)
        dd_plan = self.plan(compiled, result)
        return materialize_dd_circuit(compiled.gst, dd_plan)
